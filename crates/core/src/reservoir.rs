//! Reservoir sampling over insertion-only streams (Vitter \[60\], Li \[53\]).
//!
//! Reservoirs are the paper's per-bucket building block: §2 runs one
//! reservoir per equivalent-width bucket, and the independence argument of
//! §1.3.4 leans on the reservoir property that the sample held after `i`
//! arrivals is independent of which elements survive later replacements.
//!
//! Two interchangeable k-sample implementations are provided:
//!
//! * [`ReservoirK`] — Vitter's Algorithm R: one RNG draw per arrival.
//! * [`ReservoirL`] — Li's Algorithm L: geometric skip generation, `O(k (1 +
//!   log(N/k)))` RNG draws total. Same distribution, cheaper inner loop;
//!   benchmarked against Algorithm R in the `reservoir_ablation` bench
//!   (experiment E13).
//!
//! plus the single-sample specialization [`ReservoirOne`].

use crate::memory::MemoryWords;
use crate::sample::Sample;
use rand::Rng;

/// Single uniform sample over an insertion-only stream (Algorithm R, k=1).
#[derive(Debug, Clone)]
pub struct ReservoirOne<T> {
    candidate: Option<Sample<T>>,
    seen: u64,
}

impl<T> Default for ReservoirOne<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> ReservoirOne<T> {
    /// Empty reservoir.
    pub fn new() -> Self {
        Self {
            candidate: None,
            seen: 0,
        }
    }

    /// Offer the next stream element.
    pub fn insert<R: Rng>(&mut self, rng: &mut R, value: T, index: u64, timestamp: u64) {
        self.seen += 1;
        // Replace with probability 1/seen — Algorithm R.
        if self.seen == 1 || rng.gen_range(0..self.seen) == 0 {
            self.candidate = Some(Sample::new(value, index, timestamp));
        }
    }

    /// The current sample, if any element has been offered.
    pub fn sample(&self) -> Option<&Sample<T>> {
        self.candidate.as_ref()
    }

    /// Number of elements offered so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Forget everything (start a new bucket).
    pub fn reset(&mut self) {
        self.candidate = None;
        self.seen = 0;
    }

    /// Extract the sample, leaving the reservoir empty.
    pub fn take(&mut self) -> Option<Sample<T>> {
        self.seen = 0;
        self.candidate.take()
    }
}

impl<T> MemoryWords for ReservoirOne<T> {
    fn memory_words(&self) -> usize {
        // candidate (value, index, ts) + seen counter.
        self.candidate.as_ref().map_or(0, |_| Sample::<T>::WORDS) + 1
    }
}

/// Uniform `k`-sample *without replacement* over an insertion-only stream
/// (Vitter's Algorithm R).
///
/// While fewer than `k` elements have been offered, the reservoir holds all
/// of them.
#[derive(Debug, Clone)]
pub struct ReservoirK<T> {
    cap: usize,
    entries: Vec<Sample<T>>,
    seen: u64,
}

impl<T> ReservoirK<T> {
    /// Empty reservoir with capacity `k ≥ 1`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "ReservoirK: k must be at least 1");
        Self {
            cap: k,
            entries: Vec::with_capacity(k),
            seen: 0,
        }
    }

    /// Offer the next stream element.
    pub fn insert<R: Rng>(&mut self, rng: &mut R, value: T, index: u64, timestamp: u64) {
        self.seen += 1;
        if self.entries.len() < self.cap {
            self.entries.push(Sample::new(value, index, timestamp));
        } else {
            // Keep with probability k/seen, landing on a uniform slot.
            let j = rng.gen_range(0..self.seen) as usize;
            if j < self.cap {
                self.entries[j] = Sample::new(value, index, timestamp);
            }
        }
    }

    /// Current entries (all offered elements when `seen < k`).
    pub fn entries(&self) -> &[Sample<T>] {
        &self.entries
    }

    /// Number of elements offered so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Capacity `k`.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Forget everything (start a new bucket).
    pub fn reset(&mut self) {
        self.entries.clear();
        self.seen = 0;
    }

    /// Extract the entries, leaving the reservoir empty.
    pub fn take(&mut self) -> Vec<Sample<T>> {
        self.seen = 0;
        std::mem::take(&mut self.entries)
    }
}

impl<T> MemoryWords for ReservoirK<T> {
    fn memory_words(&self) -> usize {
        self.entries.len() * Sample::<T>::WORDS + 2 // entries + (seen, cap)
    }
}

/// Uniform `k`-sample without replacement via Li's Algorithm L \[53\]:
/// identical distribution to [`ReservoirK`], but consumes `O(k(1 +
/// log(N/k)))` random draws instead of `N` by skipping a geometric number
/// of elements between replacements.
#[derive(Debug, Clone)]
pub struct ReservoirL<T> {
    cap: usize,
    entries: Vec<Sample<T>>,
    seen: u64,
    /// Next 1-based arrival count at which a replacement happens.
    next_accept: u64,
    /// Algorithm L's running `W` state.
    w: f64,
}

impl<T> ReservoirL<T> {
    /// Empty reservoir with capacity `k ≥ 1`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "ReservoirL: k must be at least 1");
        Self {
            cap: k,
            entries: Vec::with_capacity(k),
            seen: 0,
            next_accept: 0,
            w: 1.0,
        }
    }

    fn advance_skip<R: Rng>(&mut self, rng: &mut R) {
        advance_skip_state(rng, self.cap, &mut self.w, &mut self.next_accept);
    }

    /// Offer the next stream element.
    pub fn insert<R: Rng>(&mut self, rng: &mut R, value: T, index: u64, timestamp: u64) {
        self.seen += 1;
        if self.entries.len() < self.cap {
            self.entries.push(Sample::new(value, index, timestamp));
            if self.entries.len() == self.cap {
                self.next_accept = self.seen;
                self.advance_skip(rng);
            }
            return;
        }
        if self.seen == self.next_accept {
            let slot = rng.gen_range(0..self.cap);
            self.entries[slot] = Sample::new(value, index, timestamp);
            self.advance_skip(rng);
        }
    }

    /// Offer a run of consecutive elements whose timestamps equal their
    /// stream indices (`first_index`, `first_index + 1`, …) — the shape
    /// sequence-window buckets ingest. Elements strictly between the
    /// current position and the precomputed next acceptance are skipped
    /// wholesale: zero clones, zero RNG draws, zero per-element work.
    pub fn insert_batch<R: Rng>(&mut self, rng: &mut R, values: &[T], first_index: u64)
    where
        T: Clone,
    {
        self.insert_run(rng, first_index, values.len() as u64, |i| {
            values[i as usize].clone()
        });
    }

    /// [`ReservoirL::insert_batch`] for callers whose values are not
    /// contiguous in memory: offer `m` consecutive elements with
    /// indices/timestamps `first_index..first_index + m`, materializing a
    /// value via `value_at(offset)` only when it is actually stored.
    pub fn insert_run<R: Rng>(
        &mut self,
        rng: &mut R,
        first_index: u64,
        m: u64,
        mut value_at: impl FnMut(u64) -> T,
    ) {
        let mut i = 0u64;
        while i < m {
            if self.entries.len() < self.cap {
                // Warm-up: every element is stored.
                let idx = first_index + i;
                self.insert(rng, value_at(i), idx, idx);
                i += 1;
                continue;
            }
            if self.seen + 1 < self.next_accept {
                let hop = (self.next_accept - self.seen - 1).min(m - i);
                self.seen += hop;
                i += hop;
                continue;
            }
            let idx = first_index + i;
            self.insert(rng, value_at(i), idx, idx);
            i += 1;
        }
    }

    /// Current entries (all offered elements when `seen < k`).
    pub fn entries(&self) -> &[Sample<T>] {
        &self.entries
    }

    /// Number of elements offered so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Capacity `k`.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Forget everything.
    pub fn reset(&mut self) {
        self.entries.clear();
        self.seen = 0;
        self.next_accept = 0;
        self.w = 1.0;
    }

    /// Extract the entries, leaving the reservoir empty.
    pub fn take(&mut self) -> Vec<Sample<T>> {
        self.seen = 0;
        self.next_accept = 0;
        self.w = 1.0;
        std::mem::take(&mut self.entries)
    }

    /// Checkpoint the Algorithm L skip state as `(next_accept, W bits)`.
    /// `W` travels as raw IEEE-754 bits so a round trip is exact — the
    /// skip law would silently diverge under any decimal detour.
    pub(crate) fn skip_state(&self) -> (u64, u64) {
        (self.next_accept, self.w.to_bits())
    }

    /// Rebuild a reservoir from checkpointed parts. Entries beyond `cap`
    /// are rejected by the caller's decode layer, not here.
    pub(crate) fn from_parts(
        cap: usize,
        entries: Vec<Sample<T>>,
        seen: u64,
        next_accept: u64,
        w_bits: u64,
    ) -> Self {
        Self {
            cap,
            entries,
            seen,
            next_accept,
            w: f64::from_bits(w_bits),
        }
    }
}

impl<T> MemoryWords for ReservoirL<T> {
    fn memory_words(&self) -> usize {
        self.entries.len() * Sample::<T>::WORDS + 4 // entries + (seen, cap, next, w)
    }
}

/// Algorithm L's skip advance as a free kernel over borrowed state:
/// `W *= U^{1/k}`, then `next_accept += Geometric(W) + 1`. [`ReservoirL`]
/// calls it on its own fields; the struct-of-arrays fleets
/// ([`crate::soa::SeqWorFleet`]) call it on per-key state slots so both
/// paths consume the RNG stream identically — bit-for-bit, which the
/// SoA-vs-erased equivalence tests rely on.
pub(crate) fn advance_skip_state<R: Rng>(
    rng: &mut R,
    cap: usize,
    w: &mut f64,
    next_accept: &mut u64,
) {
    *w *= random_unit(rng).powf(1.0 / cap as f64);
    let u = random_unit(rng);
    let skip = (u.ln() / (1.0 - *w).ln()).floor();
    let skip = if skip.is_finite() && skip >= 0.0 {
        skip.min(u64::MAX as f64 / 4.0) as u64
    } else {
        0
    };
    *next_accept = next_accept.saturating_add(skip).saturating_add(1);
}

/// Uniform draw in the open interval `(0, 1)` — Algorithm L needs logs of it.
fn random_unit<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen_range(0.0..1.0);
        if u > 0.0 {
            return u;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use swsample_stats::chi_square_uniform_test;

    #[test]
    fn reservoir_one_holds_single_element() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut r = ReservoirOne::new();
        assert!(r.sample().is_none());
        r.insert(&mut rng, 42u64, 0, 0);
        assert_eq!(*r.sample().expect("present").value(), 42);
        assert_eq!(r.seen(), 1);
    }

    #[test]
    fn reservoir_one_uniform() {
        let n = 16u64;
        let trials = 40_000;
        let mut rng = SmallRng::seed_from_u64(2);
        let mut counts = vec![0u64; n as usize];
        for _ in 0..trials {
            let mut r = ReservoirOne::new();
            for i in 0..n {
                r.insert(&mut rng, i, i, i);
            }
            counts[r.sample().expect("present").index() as usize] += 1;
        }
        let out = chi_square_uniform_test(&counts);
        assert!(
            out.p_value > 1e-4,
            "reservoir-1 not uniform: p = {}",
            out.p_value
        );
    }

    #[test]
    fn reservoir_k_keeps_all_when_small() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut r = ReservoirK::new(5);
        for i in 0..3u64 {
            r.insert(&mut rng, i, i, i);
        }
        assert_eq!(r.entries().len(), 3);
    }

    #[test]
    fn reservoir_k_marginal_inclusion_uniform() {
        // Each element's inclusion probability must be k/n.
        let (n, k, trials) = (20u64, 4usize, 30_000);
        let mut rng = SmallRng::seed_from_u64(4);
        let mut counts = vec![0u64; n as usize];
        for _ in 0..trials {
            let mut r = ReservoirK::new(k);
            for i in 0..n {
                r.insert(&mut rng, i, i, i);
            }
            assert_eq!(r.entries().len(), k);
            for e in r.entries() {
                counts[e.index() as usize] += 1;
            }
        }
        let out = chi_square_uniform_test(&counts);
        assert!(
            out.p_value > 1e-4,
            "reservoir-k marginals not uniform: p = {}",
            out.p_value
        );
    }

    #[test]
    fn reservoir_k_entries_distinct() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..200 {
            let mut r = ReservoirK::new(6);
            for i in 0..50u64 {
                r.insert(&mut rng, i, i, i);
            }
            let mut idx: Vec<u64> = r.entries().iter().map(|e| e.index()).collect();
            idx.sort_unstable();
            idx.dedup();
            assert_eq!(idx.len(), 6);
        }
    }

    #[test]
    fn reservoir_l_matches_distribution() {
        let (n, k, trials) = (24u64, 3usize, 30_000);
        let mut rng = SmallRng::seed_from_u64(6);
        let mut counts = vec![0u64; n as usize];
        for _ in 0..trials {
            let mut r = ReservoirL::new(k);
            for i in 0..n {
                r.insert(&mut rng, i, i, i);
            }
            assert_eq!(r.entries().len(), k);
            let mut idx: Vec<u64> = r.entries().iter().map(|e| e.index()).collect();
            idx.sort_unstable();
            idx.dedup();
            assert_eq!(idx.len(), k, "duplicate entries");
            for e in r.entries() {
                counts[e.index() as usize] += 1;
            }
        }
        let out = chi_square_uniform_test(&counts);
        assert!(
            out.p_value > 1e-4,
            "algorithm L marginals not uniform: p = {}",
            out.p_value
        );
    }

    #[test]
    fn take_and_reset_clear_state() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut r = ReservoirK::new(2);
        r.insert(&mut rng, 1u64, 0, 0);
        let taken = r.take();
        assert_eq!(taken.len(), 1);
        assert_eq!(r.seen(), 0);
        assert!(r.entries().is_empty());

        let mut one = ReservoirOne::new();
        one.insert(&mut rng, 1u64, 0, 0);
        one.reset();
        assert!(one.sample().is_none());
        assert_eq!(one.seen(), 0);
    }

    #[test]
    fn memory_words_bounded_by_capacity() {
        let mut rng = SmallRng::seed_from_u64(8);
        let mut r = ReservoirK::new(4);
        for i in 0..1000u64 {
            r.insert(&mut rng, i, i, i);
            assert!(r.memory_words() <= 4 * 3 + 2);
        }
    }
}
