//! E15 / E16 / E17 — the extension subsystems: the DGIM window-size oracle,
//! the sample-based query layer, and the timestamp-window versions of the
//! §5 estimators (full-strength Corollaries 5.2 / 5.4).

use crate::{f3, pct, table_header, table_row};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use swsample_apps::{ExactWindow, TsEntropyEstimator, TsMomentEstimator};
use swsample_core::MemoryWords;
use swsample_counting::WindowCounter;
use swsample_query::{HeavyHitters, SeqAggregator, TsAggregator};
use swsample_stats::OnlineMoments;

/// E15: DGIM approximate counting — measured worst-case relative error vs
/// the analytic bound `1/(2(r−1))`, and memory vs the exact counter.
pub fn e15_dgim_counter() {
    table_header(
        "E15 — DGIM window counter (t0 = 256, bursty, 4000 ticks): worst rel-err vs bound",
        &[
            "r",
            "bound 1/(2(r-1))",
            "worst measured",
            "mem (words)",
            "exact mem (words)",
        ],
    );
    for &r in &[2usize, 4, 8, 16, 32] {
        let mut c = WindowCounter::new(256, r);
        let mut rng = SmallRng::seed_from_u64(100 + r as u64);
        let mut exact: std::collections::VecDeque<u64> = Default::default();
        let mut worst = 0.0f64;
        let mut peak_words = 0usize;
        let mut peak_exact = 0usize;
        for tick in 0..4000u64 {
            c.advance_time(tick);
            while exact.front().is_some_and(|&ts| tick - ts >= 256) {
                exact.pop_front();
            }
            for _ in 0..rng.gen_range(0..8u64) {
                c.insert();
                exact.push_back(tick);
            }
            let truth = exact.len() as f64;
            let bound = 1.0 / (2.0 * (r as f64 - 1.0));
            if truth > 0.0 {
                let abs_err = (c.estimate() as f64 - truth).abs();
                worst = worst.max(abs_err / truth);
                // The analytic guarantee: ε·truth plus one element of
                // small-count slack (the bound is asymptotic in the count).
                assert!(
                    abs_err <= bound * truth + 1.0,
                    "E15: DGIM error {abs_err} above bound at count {truth} (r = {r})"
                );
            }
            peak_words = peak_words.max(c.memory_words());
            peak_exact = peak_exact.max(exact.len());
        }
        let bound = 1.0 / (2.0 * (r as f64 - 1.0));
        table_row(&[
            r.to_string(),
            pct(bound),
            pct(worst),
            peak_words.to_string(),
            peak_exact.to_string(),
        ]);
    }
}

/// E16: the sample-based query layer — mean/sum/quantile/share and heavy
/// hitters versus exact window answers.
pub fn e16_query_layer() {
    table_header(
        "E16a — SeqAggregator (n = 2048, k = 64, Zipf-ish values, 40 seeds): bias check",
        &["statistic", "exact", "mean estimate", "mean |rel-err|"],
    );
    let n = 2048u64;
    let stream: Vec<u64> = (0..3 * n).map(|i| (i * 7919) % 1000).collect();
    let window = &stream[(stream.len() - n as usize)..];
    let exact_mean = window.iter().sum::<u64>() as f64 / n as f64;
    let exact_sum = window.iter().sum::<u64>() as f64;
    let mut sorted = window.to_vec();
    sorted.sort_unstable();
    let exact_median = sorted[sorted.len() / 2] as f64;
    let exact_share = window.iter().filter(|&&v| v < 100).count() as f64 / n as f64;

    let (mut m_mean, mut m_sum, mut m_med, mut m_share) = (
        OnlineMoments::new(),
        OnlineMoments::new(),
        OnlineMoments::new(),
        OnlineMoments::new(),
    );
    for seed in 0..40u64 {
        let mut a = SeqAggregator::new(n, 64, SmallRng::seed_from_u64(seed));
        for &v in &stream {
            a.insert(v);
        }
        let est = a.estimate().expect("nonempty");
        m_mean.push(est.mean);
        m_sum.push(est.sum);
        m_med.push(a.quantile(0.5).expect("nonempty") as f64);
        m_share.push(a.share(|&v| v < 100).expect("nonempty"));
    }
    for (name, exact, acc) in [
        ("mean", exact_mean, &m_mean),
        ("sum", exact_sum, &m_sum),
        ("median", exact_median, &m_med),
        ("share(<100)", exact_share, &m_share),
    ] {
        let rel = (acc.mean() - exact).abs() / exact.max(1e-9);
        table_row(&[name.into(), f3(exact), f3(acc.mean()), pct(rel)]);
    }

    table_header(
        "E16b — HeavyHitters (n = 2048, k = 128, planted 35%/20% values, 40 seeds)",
        &[
            "value",
            "true share",
            "detection rate",
            "mean reported share",
        ],
    );
    let mut detect = [0u64; 2];
    let mut share_acc = [0.0f64; 2];
    let trials = 40u64;
    for seed in 0..trials {
        let mut h = HeavyHitters::new(2048, 128, 0.1, SmallRng::seed_from_u64(seed));
        let mut rng = SmallRng::seed_from_u64(900 + seed);
        for _ in 0..6000 {
            let x: f64 = rng.gen();
            let v = if x < 0.35 {
                111
            } else if x < 0.55 {
                222
            } else {
                rng.gen_range(1000..100_000u64)
            };
            h.insert(v);
        }
        for hit in h.hitters() {
            if hit.value == 111 {
                detect[0] += 1;
                share_acc[0] += hit.share;
            } else if hit.value == 222 {
                detect[1] += 1;
                share_acc[1] += hit.share;
            }
        }
    }
    for (i, (v, true_share)) in [(111u64, 0.35), (222, 0.20)].iter().enumerate() {
        table_row(&[
            v.to_string(),
            pct(*true_share),
            pct(detect[i] as f64 / trials as f64),
            pct(share_acc[i] / detect[i].max(1) as f64),
        ]);
    }

    // TsAggregator sanity row.
    let mut a = TsAggregator::new(512, 32, 0.05, SmallRng::seed_from_u64(5));
    for tick in 0..2000u64 {
        a.advance_time(tick);
        for _ in 0..3 {
            a.insert(tick % 50);
        }
    }
    let est = a.estimate().expect("nonempty");
    println!(
        "TsAggregator: n̂ = {} (true 1536), memory {} words vs {} for exact buffering",
        est.count,
        a.memory_words(),
        1536 * 3
    );
}

/// E17: Corollaries 5.2 / 5.4 on **timestamp** windows — F₂ and entropy
/// with the DGIM window-size oracle.
pub fn e17_ts_applications() {
    let t0 = 1024u64;
    table_header(
        "E17 — F2 / entropy over timestamp windows (t0 = 1024, steady 1/tick, 20 seeds)",
        &[
            "estimator",
            "s1×s2",
            "exact",
            "mean estimate",
            "mean |rel-err|",
        ],
    );
    let values = |tick: u64| (tick * 31) % 23;
    let mut exact = ExactWindow::new(t0 as usize);
    for tick in 0..3 * t0 {
        exact.insert(values(tick));
    }
    for &s1 in &[32usize, 128] {
        let mut acc = OnlineMoments::new();
        let mut err = OnlineMoments::new();
        for seed in 0..20u64 {
            let mut est = TsMomentEstimator::new(t0, 2, s1, 3, 0.05, SmallRng::seed_from_u64(seed));
            for tick in 0..3 * t0 {
                est.advance_time(tick);
                est.insert(values(tick));
            }
            let e = est.estimate().expect("nonempty");
            acc.push(e);
            err.push((e - exact.moment(2)).abs() / exact.moment(2));
        }
        table_row(&[
            "F2".into(),
            format!("{s1}×3"),
            f3(exact.moment(2)),
            f3(acc.mean()),
            pct(err.mean()),
        ]);
    }
    for &s1 in &[32usize, 128] {
        let mut acc = OnlineMoments::new();
        let mut err = OnlineMoments::new();
        for seed in 0..20u64 {
            let mut est = TsEntropyEstimator::new(t0, s1, 3, 0.05, SmallRng::seed_from_u64(seed));
            for tick in 0..3 * t0 {
                est.advance_time(tick);
                est.insert(values(tick));
            }
            let e = est.estimate().expect("nonempty");
            acc.push(e);
            err.push((e - exact.entropy()).abs() / exact.entropy());
        }
        table_row(&[
            "entropy".into(),
            format!("{s1}×3"),
            f3(exact.entropy()),
            f3(acc.mean()),
            pct(err.mean()),
        ]);
    }
    println!("(timestamp windows: the n(t) needed by both estimators comes from the DGIM");
    println!(" counter — exact n is provably unavailable in sublinear space)");
}
