//! Sample-based windowed aggregates.
//!
//! Everything here is estimated from a `k`-sample of the window
//! (Theorems 2.2 / 4.4): means and quantiles come straight from the
//! sample; sums additionally need the window size — exact for sequence
//! windows, `(1±ε)`-approximate via DGIM for timestamp windows.
//!
//! The aggregators are written against the object-safe
//! [`ErasedWindowSampler`] surface, so they work over **any** sampler in
//! the workspace: the paper's (the default, and the only ones with
//! deterministic memory) or a baseline built through
//! `swsample_baselines::spec::build`. Construct with the classic
//! `new(n, k, rng)` shape, from a [`SamplerSpec`], or adopt a boxed
//! sampler with `from_sampler` — which expects a sampler that has not
//! ingested yet, since all arrivals must flow through the aggregator's
//! own counting. [`SeqAggregator::with_seen`] is the escape hatch for
//! adopting a pre-fed sequence sampler; there is no timestamp
//! equivalent — [`TsAggregator`]'s DGIM window counter cannot be
//! backfilled, so its `from_sampler` strictly requires a fresh sampler.

use rand::Rng;
use swsample_core::seq::SeqSamplerWor;
use swsample_core::spec::{SamplerSpec, SpecError, WindowKind};
use swsample_core::ts::TsSamplerWor;
use swsample_core::{ErasedWindowSampler, MemoryWords};
use swsample_counting::WindowCounter;

/// A snapshot of sample-based aggregate estimates over the active window.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateEstimate {
    /// Estimated (or exact, for sequence windows) number of active elements.
    pub count: f64,
    /// Sample mean of the window values.
    pub mean: f64,
    /// `count · mean`.
    pub sum: f64,
    /// Smallest sampled value.
    pub min_seen: u64,
    /// Largest sampled value.
    pub max_seen: u64,
}

/// Compute the estimate from sampled values and a window-size figure.
fn estimate_from(values: &[u64], count: f64) -> AggregateEstimate {
    debug_assert!(!values.is_empty());
    let sum_sample: u64 = values.iter().sum();
    let mean = sum_sample as f64 / values.len() as f64;
    AggregateEstimate {
        count,
        mean,
        sum: mean * count,
        min_seen: *values.iter().min().expect("nonempty"),
        max_seen: *values.iter().max().expect("nonempty"),
    }
}

/// The `q`-quantile (`0 ≤ q ≤ 1`) of a sample, by sorting — the standard
/// sample-quantile estimator whose rank error is `O(n/√k)` w.h.p.
fn sample_quantile(values: &[u64], q: f64) -> u64 {
    debug_assert!(!values.is_empty());
    assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let pos = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[pos]
}

/// Drain a sampler's current `k`-sample into plain values.
fn sampled_values(s: &mut dyn ErasedWindowSampler<u64>) -> Option<Vec<u64>> {
    Some(s.sample_k()?.into_iter().map(|x| x.into_value()).collect())
}

/// Windowed aggregates over the last `n` arrivals (sequence discipline).
///
/// ```
/// use swsample_query::SeqAggregator;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut agg = SeqAggregator::new(100, 32, SmallRng::seed_from_u64(4));
/// for i in 0..1_000u64 {
///     agg.insert(i % 10);
/// }
/// let est = agg.estimate().unwrap();
/// assert_eq!(est.count, 100.0);                   // exact for seq windows
/// assert!((est.mean - 4.5).abs() < 2.0);          // sample mean near 4.5
/// assert!(agg.quantile(1.0).unwrap() <= 9);
/// ```
///
/// Or declaratively, over any erased sampler:
///
/// ```
/// use swsample_query::SeqAggregator;
///
/// let spec = "--window seq --n 100 --mode wor --k 32 --seed 4".parse().unwrap();
/// let mut agg = SeqAggregator::from_spec(&spec).unwrap();
/// agg.insert_batch(&(0..1_000u64).collect::<Vec<_>>());
/// assert_eq!(agg.count(), 100);
/// ```
pub struct SeqAggregator {
    sampler: Box<dyn ErasedWindowSampler<u64>>,
    n: u64,
    seen: u64,
}

impl std::fmt::Debug for SeqAggregator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SeqAggregator")
            .field("n", &self.n)
            .field("seen", &self.seen)
            .field("k", &self.sampler.k())
            .finish()
    }
}

impl SeqAggregator {
    /// Aggregator over the last `n` arrivals using a `k`-sample
    /// (Theorem 2.2's sampler — `O(k)` deterministic words).
    pub fn new<R: Rng + Send + Sync + 'static>(n: u64, k: usize, rng: R) -> Self {
        Self::from_sampler(Box::new(SeqSamplerWor::new(n, k, rng)), n)
    }

    /// Aggregator over any sequence-window spec (use
    /// `swsample_baselines::spec::build` + [`SeqAggregator::from_sampler`]
    /// for baseline algorithms).
    pub fn from_spec(spec: &SamplerSpec) -> Result<Self, SpecError> {
        match spec.window {
            WindowKind::Sequence(n) => Ok(Self::from_sampler(spec.build()?, n)),
            _ => Err(SpecError::Invalid(
                "SeqAggregator needs --window seq".into(),
            )),
        }
    }

    /// Adopt an erased sampler maintaining a window of the last `n`
    /// arrivals. The sampler must not have ingested yet — the aggregator
    /// counts arrivals itself (the erased surface exposes no stream
    /// position), so every insert must flow through it; to adopt a
    /// sampler that has already seen `s` elements (e.g. one borrowed
    /// from a fleet), follow with [`SeqAggregator::with_seen`]`(s)`.
    /// Without-replacement samplers give the tightest estimates;
    /// with-replacement ones remain individually uniform, so
    /// means/quantiles stay unbiased.
    pub fn from_sampler(sampler: Box<dyn ErasedWindowSampler<u64>>, n: u64) -> Self {
        assert!(n >= 1, "SeqAggregator: empty window");
        Self {
            sampler,
            n,
            seen: 0,
        }
    }

    /// Declare that the adopted sampler has already ingested `seen`
    /// arrivals, so [`count`](SeqAggregator::count) (and through it the
    /// `sum` estimate) accounts for them.
    pub fn with_seen(mut self, seen: u64) -> Self {
        self.seen = seen;
        self
    }

    /// Feed the next arrival.
    pub fn insert(&mut self, value: u64) {
        self.seen += 1;
        self.sampler.insert(value);
    }

    /// Feed a run of arrivals through the sampler's batch fast path.
    pub fn insert_batch(&mut self, values: &[u64]) {
        self.seen += values.len() as u64;
        self.sampler.insert_batch(values);
    }

    /// Exact number of active elements.
    pub fn count(&self) -> u64 {
        self.seen.min(self.n)
    }

    /// Current aggregate estimates; `None` before any arrival.
    pub fn estimate(&mut self) -> Option<AggregateEstimate> {
        let count = self.count() as f64;
        let values = sampled_values(self.sampler.as_mut())?;
        Some(estimate_from(&values, count))
    }

    /// Sample `q`-quantile of the window; `None` before any arrival.
    pub fn quantile(&mut self, q: f64) -> Option<u64> {
        let values = sampled_values(self.sampler.as_mut())?;
        Some(sample_quantile(&values, q))
    }

    /// Estimated fraction of window elements satisfying `pred`.
    pub fn share(&mut self, pred: impl Fn(&u64) -> bool) -> Option<f64> {
        let sample = self.sampler.sample_k()?;
        let hits = sample.iter().filter(|s| pred(s.value())).count();
        Some(hits as f64 / sample.len() as f64)
    }
}

impl MemoryWords for SeqAggregator {
    fn memory_words(&self) -> usize {
        self.sampler.memory_words() + 1 // + the `seen` counter
    }
}

/// Windowed aggregates over the last `t0` ticks (timestamp discipline):
/// a window sampler (Theorem 4.4 by default) plus a DGIM counter as the
/// window-size oracle.
pub struct TsAggregator {
    sampler: Box<dyn ErasedWindowSampler<u64>>,
    counter: WindowCounter,
}

impl std::fmt::Debug for TsAggregator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TsAggregator")
            .field("k", &self.sampler.k())
            .field("count_estimate", &self.counter.estimate())
            .finish()
    }
}

impl TsAggregator {
    /// Aggregator over the last `t0` ticks with a `k`-sample and a
    /// `(1±epsilon)` window-size counter.
    pub fn new<R: Rng + Send + Sync + 'static>(t0: u64, k: usize, epsilon: f64, rng: R) -> Self {
        Self::from_sampler(Box::new(TsSamplerWor::new(t0, k, rng)), t0, epsilon)
    }

    /// Aggregator over any timestamp-window spec.
    pub fn from_spec(spec: &SamplerSpec, epsilon: f64) -> Result<Self, SpecError> {
        match spec.window {
            WindowKind::Timestamp(t0) => Ok(Self::from_sampler(spec.build()?, t0, epsilon)),
            _ => Err(SpecError::Invalid("TsAggregator needs --window ts".into())),
        }
    }

    /// Adopt an existing erased sampler over a `t0`-tick window, pairing
    /// it with a **fresh** `(1±epsilon)` DGIM counter — so the sampler
    /// must not have ingested yet: the counter only counts arrivals that
    /// flow through the aggregator.
    pub fn from_sampler(sampler: Box<dyn ErasedWindowSampler<u64>>, t0: u64, epsilon: f64) -> Self {
        Self {
            sampler,
            counter: WindowCounter::with_epsilon(t0, epsilon),
        }
    }

    /// Advance the shared clock.
    pub fn advance_time(&mut self, now: u64) {
        self.sampler.advance_time(now);
        self.counter.advance_time(now);
    }

    /// Feed the next arrival at the current tick.
    pub fn insert(&mut self, value: u64) {
        self.sampler.insert(value);
        self.counter.insert();
    }

    /// Advance the clock to `now` and feed a tick's worth of arrivals in
    /// one dispatch.
    pub fn advance_and_insert(&mut self, now: u64, values: &[u64]) {
        self.sampler.advance_and_insert(now, values);
        self.counter.advance_time(now);
        for _ in values {
            self.counter.insert();
        }
    }

    /// `(1±ε)` estimate of the number of active elements.
    pub fn count_estimate(&self) -> u64 {
        self.counter.estimate()
    }

    /// Current aggregate estimates; `None` when the window is empty.
    pub fn estimate(&mut self) -> Option<AggregateEstimate> {
        let values = sampled_values(self.sampler.as_mut())?;
        Some(estimate_from(&values, self.counter.estimate() as f64))
    }

    /// Sample `q`-quantile of the window; `None` when the window is empty.
    pub fn quantile(&mut self, q: f64) -> Option<u64> {
        let values = sampled_values(self.sampler.as_mut())?;
        Some(sample_quantile(&values, q))
    }

    /// Estimated fraction of window elements satisfying `pred`.
    pub fn share(&mut self, pred: impl Fn(&u64) -> bool) -> Option<f64> {
        let sample = self.sampler.sample_k()?;
        let hits = sample.iter().filter(|s| pred(s.value())).count();
        Some(hits as f64 / sample.len() as f64)
    }
}

impl MemoryWords for TsAggregator {
    fn memory_words(&self) -> usize {
        self.sampler.memory_words() + self.counter.memory_words()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use swsample_stats::OnlineMoments;

    #[test]
    fn seq_count_is_exact() {
        let mut a = SeqAggregator::new(100, 8, SmallRng::seed_from_u64(1));
        for i in 0..37u64 {
            a.insert(i);
        }
        assert_eq!(a.count(), 37);
        for i in 0..500u64 {
            a.insert(i);
        }
        assert_eq!(a.count(), 100);
    }

    #[test]
    fn seq_mean_converges_to_window_mean() {
        // Window holds values 900..1000: mean 949.5. Average over seeds.
        let mut acc = OnlineMoments::new();
        for seed in 0..100 {
            let mut a = SeqAggregator::new(100, 16, SmallRng::seed_from_u64(seed));
            for i in 0..1000u64 {
                a.insert(i);
            }
            acc.push(a.estimate().expect("nonempty").mean);
        }
        assert!(
            (acc.mean() - 949.5).abs() < 5.0,
            "mean of means {}",
            acc.mean()
        );
    }

    #[test]
    fn seq_sum_estimates_window_sum() {
        let mut acc = OnlineMoments::new();
        for seed in 0..100 {
            let mut a = SeqAggregator::new(50, 10, SmallRng::seed_from_u64(seed));
            for i in 0..200u64 {
                a.insert(i % 7);
            }
            acc.push(a.estimate().expect("nonempty").sum);
        }
        // Window = last 50 of i%7: values cycle; exact sum:
        let exact: u64 = (150..200u64).map(|i| i % 7).sum();
        assert!(
            (acc.mean() - exact as f64).abs() < 0.15 * exact as f64,
            "sum of means {} vs exact {exact}",
            acc.mean()
        );
    }

    #[test]
    fn seq_quantile_near_true_quantile() {
        let mut acc = OnlineMoments::new();
        for seed in 0..60 {
            let mut a = SeqAggregator::new(1000, 64, SmallRng::seed_from_u64(seed));
            for i in 0..5000u64 {
                a.insert(i % 1000);
            }
            acc.push(a.quantile(0.5).expect("nonempty") as f64);
        }
        // True median of 0..1000 is ~500; sample median concentrated around it.
        assert!(
            (acc.mean() - 500.0).abs() < 60.0,
            "median of medians {}",
            acc.mean()
        );
    }

    #[test]
    fn seq_share_estimates_predicate_fraction() {
        let mut acc = OnlineMoments::new();
        for seed in 0..100 {
            let mut a = SeqAggregator::new(100, 20, SmallRng::seed_from_u64(seed));
            for i in 0..400u64 {
                a.insert(i % 10);
            }
            acc.push(a.share(|&v| v < 3).expect("nonempty"));
        }
        assert!((acc.mean() - 0.3).abs() < 0.05, "share {}", acc.mean());
    }

    #[test]
    fn seq_from_spec_equals_classic_construction() {
        // Same seed, same stream: the spec path is construction sugar,
        // not a different sampler.
        let spec = "--window seq --n 64 --mode wor --k 8 --seed 11"
            .parse()
            .expect("spec");
        let mut via_spec = SeqAggregator::from_spec(&spec).expect("builds");
        let mut classic = SeqAggregator::new(64, 8, SmallRng::seed_from_u64(11));
        let values: Vec<u64> = (0..500).map(|i| i * 3 % 101).collect();
        via_spec.insert_batch(&values);
        classic.insert_batch(&values);
        assert_eq!(via_spec.count(), classic.count());
        assert_eq!(via_spec.estimate(), classic.estimate());
        assert_eq!(via_spec.quantile(0.5), classic.quantile(0.5));
    }

    #[test]
    fn adopting_a_pre_fed_sampler_via_with_seen() {
        // A sampler that already ingested 1000 arrivals (e.g. borrowed
        // from a fleet): with_seen restores the count/sum accounting.
        let spec: SamplerSpec = "--window seq --n 100 --mode wor --k 16 --seed 5"
            .parse()
            .expect("spec");
        let mut pre_fed = spec.build::<u64>().expect("builds");
        pre_fed.insert_batch(&(0..1_000u64).collect::<Vec<_>>());
        let mut agg = SeqAggregator::from_sampler(pre_fed, 100).with_seen(1_000);
        assert_eq!(agg.count(), 100);
        let est = agg.estimate().expect("nonempty");
        assert_eq!(est.count, 100.0);
        assert!(est.sum > 0.0, "sum reflects the full window, not 0");
    }

    #[test]
    fn seq_from_spec_rejects_other_windows() {
        let ts = "--window ts --w 9 --mode wor".parse().expect("spec");
        assert!(SeqAggregator::from_spec(&ts).is_err());
        let ts2 = "--window seq --n 9 --mode wor".parse().expect("spec");
        assert!(TsAggregator::from_spec(&ts2, 0.1).is_err());
    }

    #[test]
    fn ts_aggregator_combines_counter_and_sampler() {
        let mut a = TsAggregator::new(16, 8, 0.1, SmallRng::seed_from_u64(2));
        for tick in 0..100u64 {
            a.advance_time(tick);
            a.insert(tick % 5);
            a.insert(tick % 5 + 10);
        }
        // 16 ticks × 2 arrivals = 32 active.
        let est = a.estimate().expect("nonempty");
        assert!(
            (est.count - 32.0).abs() <= 0.1 * 32.0 + 1.0,
            "count {}",
            est.count
        );
        assert!(est.mean > 0.0 && est.sum > 0.0);
    }

    #[test]
    fn ts_advance_and_insert_matches_per_element_feeding() {
        let mut batched = TsAggregator::new(8, 4, 0.1, SmallRng::seed_from_u64(3));
        let mut single = TsAggregator::new(8, 4, 0.1, SmallRng::seed_from_u64(3));
        for tick in 0..60u64 {
            let values = [tick, tick + 1, tick + 2];
            batched.advance_and_insert(tick, &values);
            single.advance_time(tick);
            for v in values {
                single.insert(v);
            }
        }
        assert_eq!(batched.count_estimate(), single.count_estimate());
        assert_eq!(batched.memory_words(), single.memory_words());
    }

    #[test]
    fn ts_empty_window_returns_none() {
        let mut a = TsAggregator::new(4, 3, 0.2, SmallRng::seed_from_u64(3));
        assert!(a.estimate().is_none());
        a.advance_time(0);
        a.insert(5);
        a.advance_time(100);
        assert!(a.estimate().is_none());
        assert_eq!(a.count_estimate(), 0);
    }

    #[test]
    fn quantile_bounds_checked() {
        let vals = [5u64, 1, 9, 3];
        assert_eq!(sample_quantile(&vals, 0.0), 1);
        assert_eq!(sample_quantile(&vals, 1.0), 9);
        // Even-length sample: position 0.5·3 = 1.5 rounds away from zero.
        assert_eq!(sample_quantile(&vals, 0.5), 5);
    }

    #[test]
    #[should_panic]
    fn quantile_rejects_out_of_range() {
        sample_quantile(&[1], 1.5);
    }

    #[test]
    fn memory_stays_sublinear() {
        let mut a = TsAggregator::new(1024, 8, 0.1, SmallRng::seed_from_u64(4));
        for tick in 0..4096u64 {
            a.advance_time(tick);
            for _ in 0..4 {
                a.insert(tick);
            }
        }
        // Window holds 4096 elements of 3 words if buffered; the aggregator
        // must be far below that.
        assert!(a.memory_words() < 4096, "memory {}", a.memory_words());
    }
}
