//! The skew-aware work-stealing scheduler behind
//! [`MultiStreamEngine::ingest_parallel`](super::MultiStreamEngine::ingest_parallel),
//! and the structured [`WorkerPanic`] report it surfaces when a per-key
//! sampler panics mid-unit.
//!
//! # Why not the old shard-pinned pool
//!
//! The first parallel design fed a persistent pool over mpsc channels:
//! one job per shard-batch, shard `s` always to worker `s % threads`, and
//! a full completion barrier per call. Three structural costs came with
//! it, all visible in the committed BENCH thread sweep (flat-to-negative
//! 1→8 threads): a channel hop (allocation + wakeup) per shard per
//! batch, a barrier that serialized the dispatcher against the slowest
//! worker every batch, and a fixed shard→worker pin that parked a
//! zipf-hot shard on one worker while the rest idled.
//!
//! # The work-stealing design
//!
//! Each batch becomes one **epoch**:
//!
//! 1. The calling thread partitions the batch into **shard-run units**
//!    (one unit per non-empty shard: the shard's events, in arrival
//!    order, as a contiguous slice of a shard-grouped route array — no
//!    per-shard `Vec` clones, one counting sort).
//! 2. Units are ordered **largest-first** (LPT — longest processing time
//!    first): the zipf-hot shard is claimed immediately, and the many
//!    small shards backfill the other workers instead of queueing behind
//!    the hot one.
//! 3. The unit array is published behind a **lock-free claim queue**: a
//!    single atomic cursor (`fetch_add`) over the prepared array. No
//!    per-unit channel send, no per-unit lock; claiming a unit is one
//!    atomic RMW.
//! 4. Persistent workers — plus the calling thread itself, which always
//!    participates as worker 0 — claim and steal units until the cursor
//!    runs off the end. Wakeups are **chained**: publishing seeds one
//!    `notify_one`, and each claim wakes one more parked stealer while
//!    unclaimed units remain, so idle stealers that would lose the race
//!    anyway (oversubscribed or single-core hosts) are never scheduled. A worker whose "home" shard (the old `s %
//!    threads` pin, kept for accounting) is claimed by someone else
//!    records a **steal**; per-worker units-claimed / units-stolen /
//!    busy-ns counters feed [`ParallelStats`].
//!
//! **Double-buffered handoff:** `ingest_parallel` no longer ends with a
//! completion barrier. Publishing epoch `N` returns once every unit of
//! `N` is *claimed*; the next call prepares epoch `N+1` (partition +
//! sort) while `N`'s in-flight tail drains, then performs a two-slot
//! epoch handshake — wait for `N` complete, publish `N+1`. At most one
//! epoch is ever outstanding, and epochs never overlap in execution, so
//! cross-batch per-shard ordering is exactly the serial path's. Queries
//! and checkpoints synchronize on the epoch watermark before reading.
//!
//! # Determinism
//!
//! The bit-identity contract survives stealing because scheduling only
//! decides *who* runs a unit, never *what order* a key's events apply
//! in: per-key RNG seeds are splitmix-derived from the key hash alone,
//! each shard is exactly one unit per epoch (a per-unit **claimed bit**
//! and a per-shard **executing flag** assert one-shard-one-worker; see
//! [`ParallelStats::violations`]), units apply their events in arrival
//! order, and epochs are serialized. Samples are therefore byte-equal
//! at every thread count, on either backend — same argument as before,
//! now enforced by counters instead of channel topology.

use std::any::Any;
use std::hash::Hash;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::Instant;

use super::{KeyedEvent, Shard};

/// Structured report of a shard-ingestion panic: which worker ran the
/// unit, which shard it was ingesting, and the panic payload.
///
/// A sampler panic (e.g. a key's timestamps running backwards — a caller
/// contract violation) used to kill the worker thread and abort the
/// dispatching `ingest_parallel` with an opaque `recv` failure. Now the
/// worker catches the unwind **while still holding the shard's write
/// guard**, so the `RwLock` is never poisoned: the offending shard keeps
/// its pre-panic-visible state (the failed sub-batch may be partially
/// applied) and every shard — including this one — remains queryable and
/// ingestible afterwards. With the double-buffered epoch pipeline the
/// report surfaces at the **next synchronization point**: the following
/// `try_ingest_parallel` call, or an explicit
/// [`flush`](super::MultiStreamEngine::flush).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerPanic {
    /// Index of the worker that ran the unit (`0` is the calling
    /// thread — it claims units too — and also the inline serial path).
    pub worker: usize,
    /// Index of the engine shard whose ingestion panicked.
    pub shard: usize,
    /// The panic payload, when it was a string (the usual case);
    /// `"<non-string panic payload>"` otherwise.
    pub message: String,
}

impl std::fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shard {} ingestion panicked on worker {}: {}",
            self.shard, self.worker, self.message
        )
    }
}

impl std::error::Error for WorkerPanic {}

/// Per-worker scheduling counters for one worker slot, snapshotted from
/// the live atomics by [`MultiStreamEngine::parallel_stats`](super::MultiStreamEngine::parallel_stats).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Units this worker claimed from the queue (home or stolen).
    pub claimed: u64,
    /// Claimed units whose home worker (`shard % threads`) was someone
    /// else — the skew the old pinned design could not shed.
    pub stolen: u64,
    /// Nanoseconds spent executing units (excludes idle/park time).
    pub busy_ns: u64,
}

/// A snapshot of the work-stealing scheduler's lifetime counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParallelStats {
    /// Configured thread count (worker 0 is the calling thread).
    pub threads: usize,
    /// Epochs (batches) fully applied by the scheduler.
    pub epochs: u64,
    /// Shard-run units executed, summed over workers.
    pub units: u64,
    /// Units executed by a non-home worker, summed over workers.
    pub steals: u64,
    /// One-shard-two-workers invariant violations observed (claimed-bit
    /// double-claims + executing-flag overlaps). Always 0 unless the
    /// scheduler is broken; tests assert on it.
    pub violations: u64,
    /// Per-worker counters, index = worker id (0 = calling thread).
    pub workers: Vec<WorkerStats>,
}

impl ParallelStats {
    /// Busy-time imbalance across workers that did any work: max
    /// per-worker busy-ns over mean busy-ns. `1.0` is perfect balance;
    /// the old pinned pool's zipf pathology shows up here as ≈threads.
    pub fn imbalance(&self) -> f64 {
        let busy: Vec<u64> = self
            .workers
            .iter()
            .map(|w| w.busy_ns)
            .filter(|&b| b > 0)
            .collect();
        if busy.is_empty() {
            return 1.0;
        }
        let max = *busy.iter().max().expect("nonempty") as f64;
        let mean = busy.iter().sum::<u64>() as f64 / busy.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

/// Extract the human-readable message from a `catch_unwind` payload.
pub(crate) fn panic_message(payload: Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Run one shard sub-batch under `catch_unwind`, holding the write guard
/// across the catch so a panicking sampler never poisons the shard lock.
pub(crate) fn ingest_guarded<K, T>(
    shard: &Arc<RwLock<Shard<K, T>>>,
    batch: &[KeyedEvent<K, T>],
    route: &[(u32, u64)],
    worker: usize,
    shard_index: usize,
) -> Result<(), WorkerPanic>
where
    K: Hash + Eq + Clone,
    T: Clone + 'static,
{
    let mut guard = shard.write().expect("shard lock poisoned");
    catch_unwind(AssertUnwindSafe(|| guard.ingest(batch, route))).map_err(|payload| WorkerPanic {
        worker,
        shard: shard_index,
        message: panic_message(payload),
    })
}

/// One claimable work item: a shard plus its slice of the epoch's
/// shard-grouped route (arrival order within the slice).
struct Unit<K, T: Clone> {
    shard_index: usize,
    /// The old pinned assignment (`shard % threads`), kept purely for
    /// steal accounting.
    home_worker: usize,
    shard: Arc<RwLock<Shard<K, T>>>,
    start: usize,
    len: usize,
}

/// One published batch: the owned events, the shard-grouped route, the
/// LPT-ordered unit array, and the claim/completion state.
pub(crate) struct Epoch<K, T: Clone> {
    id: u64,
    batch: Vec<KeyedEvent<K, T>>,
    route: Vec<(u32, u64)>,
    units: Vec<Unit<K, T>>,
    /// The lock-free claim queue: next unclaimed index in `units`.
    cursor: AtomicUsize,
    /// Units not yet completed; the worker that takes this to 0 marks
    /// the epoch complete and wakes waiters.
    remaining: AtomicUsize,
    /// Per-unit claimed bits — a second claim of the same unit is an
    /// invariant violation (the cursor alone already prevents it; the
    /// bit turns "should be impossible" into a counted assertion).
    claimed: Vec<AtomicBool>,
    /// Per-shard executing flags (shared across epochs, sized to the
    /// engine's shard count): two workers inside one shard at once — in
    /// this epoch or across an epoch-overlap bug — is a violation.
    executing: Arc<Vec<AtomicBool>>,
    panics: Mutex<Vec<WorkerPanic>>,
}

impl<K: Clone, T: Clone> Epoch<K, T> {
    /// Partition `batch` into shard-run units, LPT-ordered. `hash` maps
    /// a key to its hash (shard = folded hash & mask). Returns `None`
    /// for an empty batch.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn prepare(
        batch: &[KeyedEvent<K, T>],
        nshards: usize,
        threads: usize,
        shard_mask: u64,
        shards: &[Arc<RwLock<Shard<K, T>>>],
        executing: Arc<Vec<AtomicBool>>,
        hash: impl Fn(&K) -> u64,
    ) -> Option<Self> {
        if batch.is_empty() {
            return None;
        }
        // Counting sort by shard: one pass for counts, one to scatter
        // (position, hash) into a single shard-grouped route array.
        // Arrival order is preserved within each shard's slice, which is
        // all determinism needs. The hash is recomputed in the scatter
        // pass rather than buffered — hashing a key is a couple of
        // arithmetic ops, cheaper per epoch than allocating and
        // streaming a batch-sized side array.
        let mut counts = vec![0usize; nshards];
        for (key, _, _) in batch {
            let h = hash(key);
            counts[(((h >> 32) ^ h) & shard_mask) as usize] += 1;
        }
        let mut offsets = vec![0usize; nshards];
        let mut acc = 0usize;
        for (s, count) in counts.iter().enumerate() {
            offsets[s] = acc;
            acc += count;
        }
        let mut route = vec![(0u32, 0u64); batch.len()];
        let mut fill = offsets.clone();
        for (pos, (key, _, _)) in batch.iter().enumerate() {
            let h = hash(key);
            let s = (((h >> 32) ^ h) & shard_mask) as usize;
            route[fill[s]] = (pos as u32, h);
            fill[s] += 1;
        }
        let mut units: Vec<Unit<K, T>> = (0..nshards)
            .filter(|&s| counts[s] > 0)
            .map(|s| Unit {
                shard_index: s,
                home_worker: s % threads,
                shard: Arc::clone(&shards[s]),
                start: offsets[s],
                len: counts[s],
            })
            .collect();
        // LPT: largest unit first, shard index as the deterministic
        // tie-break. The hot shard starts draining on the first claim.
        units.sort_by(|a, b| b.len.cmp(&a.len).then(a.shard_index.cmp(&b.shard_index)));
        let claimed = (0..units.len()).map(|_| AtomicBool::new(false)).collect();
        Some(Self {
            id: 0, // assigned at publish, before the epoch is shared
            batch: batch.to_vec(),
            route,
            remaining: AtomicUsize::new(units.len()),
            claimed,
            units,
            cursor: AtomicUsize::new(0),
            executing,
            panics: Mutex::new(Vec::new()),
        })
    }
}

/// Live per-worker counters (see [`WorkerStats`] for the snapshot form).
#[derive(Default)]
struct WorkerCounters {
    claimed: AtomicU64,
    stolen: AtomicU64,
    busy_ns: AtomicU64,
}

struct PoolState<K, T: Clone> {
    /// The epoch being drained (or the last one drained).
    current: Option<Arc<Epoch<K, T>>>,
    /// Desired worker count *including* the calling thread: pool threads
    /// `1..target` stay alive, `>= target` exit at the next check.
    target: usize,
    shutdown: bool,
    /// First panic (in shard order) from a completed epoch, awaiting the
    /// next synchronization point.
    pending: Option<WorkerPanic>,
    /// Worker id allocated at publish time; lets concurrent callers each
    /// drain under a distinct accounting slot.
    counters: Vec<Arc<WorkerCounters>>,
}

/// State shared between the engine and its stealer threads.
pub(crate) struct PoolShared<K, T: Clone> {
    /// Id of the most recently published epoch (0 = none yet).
    published: AtomicU64,
    /// Id of the most recently *completed* epoch. `completed ==
    /// published` means no epoch is outstanding — the fast path every
    /// query watermark check takes.
    completed: AtomicU64,
    state: Mutex<PoolState<K, T>>,
    /// Workers park here between epochs.
    work_cv: Condvar,
    /// Publishers and flushers park here for epoch completion.
    done_cv: Condvar,
    epochs: AtomicU64,
    violations: AtomicU64,
    /// `true` when the host reports a single unit of available
    /// parallelism at pool spawn. Waking a stealer then buys nothing —
    /// the OS time-slices it against the publisher over the same core,
    /// doubling the hot working set (measurably worse at large fleets) —
    /// so work wakeups are skipped entirely and the publisher drains
    /// every epoch alone. Determinism is unaffected: scheduling decides
    /// who runs a unit, never what a unit computes.
    solo: bool,
}

impl<K: Clone, T: Clone> PoolShared<K, T> {
    /// Claim-and-execute until the epoch's cursor runs off the unit
    /// array. Runs on pool workers and on the publishing caller alike.
    fn drain(&self, epoch: &Epoch<K, T>, me: usize, counters: &WorkerCounters)
    where
        K: Hash + Eq,
        T: 'static,
    {
        loop {
            let idx = epoch.cursor.fetch_add(1, Ordering::AcqRel);
            if idx >= epoch.units.len() {
                return;
            }
            let unit = &epoch.units[idx];
            // Wakeup chaining: each successful claim wakes one more
            // parked stealer while unclaimed units remain, so an epoch
            // costs one futex wake per *engaged* worker instead of
            // `threads - 1` unconditionally (on a busy host most
            // stealers never wake at all — the publisher drains the
            // queue before the chain reaches them). Single-core hosts
            // skip wakeups altogether (see [`PoolShared::solo`]).
            if !self.solo && idx + 1 < epoch.units.len() {
                self.work_cv.notify_one();
            }
            if epoch.claimed[idx].swap(true, Ordering::AcqRel) {
                self.violations.fetch_add(1, Ordering::Relaxed);
            }
            if epoch.executing[unit.shard_index].swap(true, Ordering::AcqRel) {
                self.violations.fetch_add(1, Ordering::Relaxed);
            }
            let started = Instant::now();
            let route = &epoch.route[unit.start..unit.start + unit.len];
            let result = ingest_guarded(&unit.shard, &epoch.batch, route, me, unit.shard_index);
            epoch.executing[unit.shard_index].store(false, Ordering::Release);
            counters
                .busy_ns
                .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
            counters.claimed.fetch_add(1, Ordering::Relaxed);
            if me != unit.home_worker {
                counters.stolen.fetch_add(1, Ordering::Relaxed);
            }
            if let Err(p) = result {
                epoch.panics.lock().expect("panic list").push(p);
            }
            if epoch.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last unit: the epoch is complete. Park the first panic
                // (shard order) for the next synchronization point and
                // wake publishers/flushers.
                let mut st = self.state.lock().expect("pool state");
                let mut panics = std::mem::take(&mut *epoch.panics.lock().expect("panic list"));
                panics.sort_by_key(|p| p.shard);
                if let Some(p) = panics.into_iter().next() {
                    st.pending.get_or_insert(p);
                }
                self.epochs.fetch_add(1, Ordering::Relaxed);
                self.completed.store(epoch.id, Ordering::Release);
                self.done_cv.notify_all();
            }
        }
    }
}

fn worker_loop<K, T>(shared: Arc<PoolShared<K, T>>, me: usize, counters: Arc<WorkerCounters>)
where
    K: Hash + Eq + Clone,
    T: Clone + 'static,
{
    let mut seen = 0u64;
    loop {
        let epoch = {
            let mut st = shared.state.lock().expect("pool state");
            loop {
                if st.shutdown || me >= st.target {
                    return;
                }
                // On a single-core host stealers park unconditionally
                // (no wakeup will ever come — see [`PoolShared::solo`]):
                // a freshly spawned worker's first scheduled slice lands
                // mid-epoch and would otherwise claim a stint it can
                // only run by preempting the publisher.
                let published = shared.published.load(Ordering::Acquire);
                if published > seen && !shared.solo {
                    if let Some(e) = st.current.clone() {
                        seen = published;
                        break e;
                    }
                }
                st = shared.work_cv.wait(st).expect("pool state");
            }
        };
        shared.drain(&epoch, me, &counters);
    }
}

/// The persistent work-stealing pool: stealer threads `1..threads`
/// (worker 0 is whatever thread calls `ingest_parallel`), the shared
/// epoch slots, and the join handles.
///
/// Liveness argument: every published epoch is drained to cursor
/// exhaustion by its *publisher* before `submit` returns, so no unit
/// ever waits on a pool thread existing — the pool can shrink to zero
/// stealers (target 1) or shut down at any epoch boundary without
/// stranding work. Workers check the shrink target between units only;
/// a mid-unit worker finishes its unit first, keeping the
/// one-shard-one-worker invariant intact across rescales.
pub(crate) struct WorkStealPool<K, T: Clone> {
    shared: Arc<PoolShared<K, T>>,
    /// `handles[w - 1]` is stealer `w`; `None` once joined after a
    /// shrink (respawned in place on a later grow — live workers in
    /// `1..min(old, new)` are reused untouched).
    handles: Vec<Option<std::thread::JoinHandle<()>>>,
}

impl<K, T> WorkStealPool<K, T>
where
    K: Hash + Eq + Clone + Send + Sync + 'static,
    T: Clone + Send + Sync + 'static,
{
    pub(crate) fn spawn(threads: usize) -> Self {
        let shared = Arc::new(PoolShared {
            published: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            state: Mutex::new(PoolState {
                current: None,
                target: 1,
                shutdown: false,
                pending: None,
                counters: vec![Arc::new(WorkerCounters::default())],
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            epochs: AtomicU64::new(0),
            violations: AtomicU64::new(0),
            solo: std::thread::available_parallelism().is_ok_and(|n| n.get() == 1),
        });
        let mut pool = Self {
            shared,
            handles: Vec::new(),
        };
        pool.resize(threads);
        pool
    }

    /// Grow or shrink the stealer set to `threads - 1` pool threads,
    /// reusing live workers where counts allow: growing spawns only the
    /// missing indices; shrinking signals excess workers (they exit at
    /// the next between-units check) and joins them. Counters persist
    /// across rescales.
    pub(crate) fn resize(&mut self, threads: usize) {
        let threads = threads.max(1);
        let old = {
            let mut st = self.shared.state.lock().expect("pool state");
            let old = st.target;
            if old == threads {
                return;
            }
            st.target = threads;
            while st.counters.len() < threads {
                st.counters.push(Arc::new(WorkerCounters::default()));
            }
            // Wake parked workers so excess ones observe the new target.
            self.shared.work_cv.notify_all();
            old
        };
        if threads < old {
            for w in threads..old {
                if let Some(handle) = self.handles.get_mut(w - 1).and_then(Option::take) {
                    let _ = handle.join();
                }
            }
            return;
        }
        while self.handles.len() < threads - 1 {
            self.handles.push(None);
        }
        for w in old.max(1)..threads {
            if self.handles[w - 1].is_some() {
                continue; // a live worker from before the last shrink
            }
            let shared = Arc::clone(&self.shared);
            let counters = {
                let st = self.shared.state.lock().expect("pool state");
                Arc::clone(&st.counters[w])
            };
            let handle = std::thread::Builder::new()
                .name(format!("swsample-steal-worker-{w}"))
                .spawn(move || worker_loop(shared, w, counters))
                .expect("spawn steal worker");
            self.handles[w - 1] = Some(handle);
        }
    }

    /// Two-slot epoch handshake: wait for the outstanding epoch (if any)
    /// to complete — collecting its deferred panic — publish `epoch`,
    /// then help drain it to cursor exhaustion as worker 0. Returns the
    /// *previous* epoch's panic report, if one is pending.
    pub(crate) fn submit(&self, mut epoch: Epoch<K, T>) -> Result<(), WorkerPanic> {
        let (epoch, counters) = {
            let mut st = self.shared.state.lock().expect("pool state");
            while self.shared.completed.load(Ordering::Acquire)
                < self.shared.published.load(Ordering::Acquire)
            {
                st = self.shared.done_cv.wait(st).expect("pool state");
            }
            let pending = st.pending.take();
            let id = self.shared.published.load(Ordering::Acquire) + 1;
            epoch.id = id;
            let epoch = Arc::new(epoch);
            st.current = Some(Arc::clone(&epoch));
            self.shared.published.store(id, Ordering::Release);
            // Seed the wakeup chain with a single stealer; `drain`
            // cascades further wakes only while unclaimed units remain
            // (see the chaining note there). Rescale and shutdown still
            // broadcast, so target checks are never missed.
            if !self.shared.solo {
                self.shared.work_cv.notify_one();
            }
            let counters = Arc::clone(&st.counters[0]);
            drop(st);
            if let Some(p) = pending {
                // The previous batch panicked: report it now. Our own
                // epoch is already published; the stealers will drain
                // it, and the engine-side watermark still synchronizes.
                self.drain_as_caller(&epoch, &counters);
                return Err(p);
            }
            (epoch, counters)
        };
        self.drain_as_caller(&epoch, &counters);
        Ok(())
    }

    fn drain_as_caller(&self, epoch: &Epoch<K, T>, counters: &WorkerCounters) {
        self.shared.drain(epoch, 0, counters);
    }
}

impl<K, T: Clone> WorkStealPool<K, T> {
    /// Wait until every published epoch has completed. Cheap when idle:
    /// two atomic loads.
    pub(crate) fn barrier(&self) {
        if self.shared.completed.load(Ordering::Acquire)
            >= self.shared.published.load(Ordering::Acquire)
        {
            return;
        }
        let mut st = self.shared.state.lock().expect("pool state");
        while self.shared.completed.load(Ordering::Acquire)
            < self.shared.published.load(Ordering::Acquire)
        {
            st = self.shared.done_cv.wait(st).expect("pool state");
        }
    }

    /// [`barrier`](Self::barrier), then take the deferred panic, if any.
    pub(crate) fn flush(&self) -> Result<(), WorkerPanic> {
        self.barrier();
        let mut st = self.shared.state.lock().expect("pool state");
        st.pending.take().map_or(Ok(()), Err)
    }

    /// Snapshot the scheduler counters.
    pub(crate) fn stats(&self) -> ParallelStats {
        let st = self.shared.state.lock().expect("pool state");
        let workers: Vec<WorkerStats> = st
            .counters
            .iter()
            .map(|c| WorkerStats {
                claimed: c.claimed.load(Ordering::Relaxed),
                stolen: c.stolen.load(Ordering::Relaxed),
                busy_ns: c.busy_ns.load(Ordering::Relaxed),
            })
            .collect();
        ParallelStats {
            threads: st.target,
            epochs: self.shared.epochs.load(Ordering::Relaxed),
            units: workers.iter().map(|w| w.claimed).sum(),
            steals: workers.iter().map(|w| w.stolen).sum(),
            violations: self.shared.violations.load(Ordering::Relaxed),
            workers,
        }
    }
}

impl<K, T: Clone> Drop for WorkStealPool<K, T> {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("pool state");
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for handle in self.handles.iter_mut().filter_map(Option::take) {
            let _ = handle.join();
        }
    }
}
