//! Criterion bench for the DGIM window counter (experiment E15's cost
//! side): per-arrival insert cost across accuracy budgets, against the
//! exact deque counter it replaces.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::collections::VecDeque;
use std::hint::black_box;
use std::time::Duration;
use swsample_counting::WindowCounter;

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("dgim_insert");
    group.throughput(Throughput::Elements(1));
    for &r in &[2usize, 8, 32] {
        group.bench_with_input(BenchmarkId::new("dgim", format!("r{r}")), &r, |b, &r| {
            let mut counter = WindowCounter::new(4096, r);
            let mut tick = 0u64;
            let mut i = 0u64;
            b.iter(|| {
                if i.is_multiple_of(4) {
                    tick += 1;
                    counter.advance_time(tick);
                }
                counter.insert();
                i += 1;
                black_box(counter.estimate())
            });
        });
    }
    group.bench_function("exact_deque", |b| {
        let mut deque: VecDeque<u64> = VecDeque::new();
        let mut tick = 0u64;
        let mut i = 0u64;
        b.iter(|| {
            if i.is_multiple_of(4) {
                tick += 1;
                while deque.front().is_some_and(|&ts| tick - ts >= 4096) {
                    deque.pop_front();
                }
            }
            deque.push_back(tick);
            i += 1;
            black_box(deque.len())
        });
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_insert
}
criterion_main!(benches);
