//! Sampling **without replacement** from timestamp-based windows via the §4
//! black-box reduction (Lemmas 4.1–4.3, Theorem 4.4).
//!
//! The construction maintains `k` *delayed* single-sample engines: engine
//! `i` samples uniformly from all active elements **except the last `i`
//! arrivals** — an element enters engine `i`'s covering decomposition only
//! once more than `i` elements have arrived after it (Lemma 4.1). Together
//! with an auxiliary array of the last `k` arrivals (shared across engines),
//! a `k`-sample without replacement is assembled at query time by the
//! Lemma 4.2 recurrence:
//!
//! ```text
//! S^{b+1}_{a+1} = S^b_a ∪ {element b+1}   if S^{b+1}_1 ∈ S^b_a
//!               = S^b_a ∪ S^{b+1}_1        otherwise
//! ```
//!
//! iterated from `S^{n−k+1}_1 = R_{k−1}` up to `S^n_k` (Lemma 4.3). Total
//! memory: `Θ(k + k log n)` words, deterministic.

use super::engine::TsEngine;
use crate::memory::MemoryWords;
use crate::sample::Sample;
use crate::traits::WindowSampler;
use rand::Rng;
use std::collections::VecDeque;

/// A uniform `k`-sample *without replacement* over a timestamp window of
/// width `t0` — Theorem 4.4, `O(k log n)` memory words, deterministic.
///
/// When fewer than `k` elements are active the sample is all of them.
///
/// ```
/// use swsample_core::ts::TsSamplerWor;
/// use swsample_core::WindowSampler;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut s = TsSamplerWor::new(30, 4, SmallRng::seed_from_u64(5));
/// for tick in 0..200u64 {
///     s.advance_time(tick);
///     s.insert(tick);          // one arrival per tick
/// }
/// let out = s.sample_k().unwrap();
/// assert_eq!(out.len(), 4);
/// for smp in &out {
///     assert!(199 - smp.timestamp() < 30);       // all active
/// }
/// ```
#[derive(Debug, Clone)]
pub struct TsSamplerWor<T, R> {
    k: usize,
    /// `engines[i]` samples the active elements minus the last `i` arrivals.
    engines: Vec<TsEngine<T>>,
    /// The last `k` arrivals (the paper's auxiliary array), newest at the
    /// back.
    recent: VecDeque<Sample<T>>,
    rng: R,
    now: u64,
    next_index: u64,
}

impl<T: Clone, R: Rng> TsSamplerWor<T, R> {
    /// Sampler over windows of width `t0 ≥ 1` maintaining a `k ≥ 1`-sample
    /// without replacement.
    pub fn new(t0: u64, k: usize, rng: R) -> Self {
        assert!(k >= 1, "TsSamplerWor: k must be at least 1");
        Self {
            k,
            engines: (0..k).map(|_| TsEngine::new(t0)).collect(),
            recent: VecDeque::with_capacity(k),
            rng,
            now: 0,
            next_index: 0,
        }
    }

    /// Window width `t0`.
    pub fn window(&self) -> u64 {
        self.engines[0].window()
    }

    /// Current clock.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Total arrivals observed.
    pub fn len_seen(&self) -> u64 {
        self.next_index
    }

    /// The still-active suffix of the last-`k` array.
    fn active_recent(&self) -> Vec<Sample<T>> {
        let t0 = self.window();
        self.recent
            .iter()
            .filter(|s| self.now - s.timestamp() < t0)
            .cloned()
            .collect()
    }
}

impl<T, R> MemoryWords for TsSamplerWor<T, R> {
    fn memory_words(&self) -> usize {
        self.engines.memory_words() + self.recent.len() * Sample::<T>::WORDS + 3
    }
}

impl<T: Clone, R: Rng> WindowSampler<T> for TsSamplerWor<T, R> {
    fn advance_time(&mut self, now: u64) {
        assert!(now >= self.now, "TsSamplerWor: clock moved backwards");
        self.now = now;
        for e in &mut self.engines {
            e.advance_time(now);
        }
    }

    fn insert(&mut self, value: T) {
        let item = Sample::new(value, self.next_index, self.now);
        self.next_index += 1;
        // Engine 0 sees the arrival immediately.
        self.engines[0].insert(
            &mut self.rng,
            item.value().clone(),
            item.index(),
            item.timestamp(),
        );
        // Push into the auxiliary array *before* feeding the delayed
        // engines: afterwards, recent[len−1−i] is exactly the element with
        // `i` arrivals after it — the one engine `i` is now allowed to see.
        self.recent.push_back(item);
        if self.recent.len() > self.k {
            self.recent.pop_front();
        }
        for i in 1..self.k {
            if self.recent.len() > i {
                let delayed = self.recent[self.recent.len() - 1 - i].clone();
                // Lemma 4.1: the engine itself skips arrivals that have
                // already expired while waiting in the array.
                self.engines[i].insert(
                    &mut self.rng,
                    delayed.value().clone(),
                    delayed.index(),
                    delayed.timestamp(),
                );
            }
        }
    }

    fn insert_batch(&mut self, values: &[T])
    where
        T: Clone,
    {
        if values.is_empty() {
            return;
        }
        let first = self.next_index;
        self.next_index += values.len() as u64;
        let now = self.now;
        // Materialize the combined auxiliary view (old last-k array + the
        // batch) once, then run engine-major: engine `i` sees arrival `j`
        // as soon as `i` newer arrivals exist, i.e. element
        // `combined[old_len + j − i]` — exactly what the per-arrival path
        // feeds it, but with each engine's covering hot in cache.
        let old_len = self.recent.len();
        let mut combined: Vec<Sample<T>> = Vec::with_capacity(old_len + values.len());
        combined.extend(self.recent.iter().cloned());
        for (j, v) in values.iter().enumerate() {
            combined.push(Sample::new(v.clone(), first + j as u64, now));
        }
        for (i, engine) in self.engines.iter_mut().enumerate() {
            for j in 0..values.len() {
                let pos = old_len + j;
                if pos >= i {
                    let s = &combined[pos - i];
                    engine.insert(&mut self.rng, s.value().clone(), s.index(), s.timestamp());
                }
            }
        }
        // The auxiliary array keeps the last k arrivals.
        let keep = combined.len().min(self.k);
        self.recent = combined.split_off(combined.len() - keep).into();
    }

    fn sample(&mut self) -> Option<Sample<T>> {
        // Engine 0 is an undelayed §3 sampler of the full window.
        self.engines[0].sample(&mut self.rng)
    }

    fn sample_k(&mut self) -> Option<Vec<Sample<T>>> {
        let active_recent = self.active_recent();
        // R_{k−1} samples the window minus the last k−1 arrivals; if that
        // domain is empty the whole window fits in the auxiliary array.
        let seed = match self.engines[self.k - 1].sample(&mut self.rng) {
            Some(s) => s,
            None => {
                return if active_recent.is_empty() {
                    None
                } else {
                    Some(active_recent)
                };
            }
        };
        // n ≥ k: the last k arrivals are all active.
        debug_assert_eq!(active_recent.len(), self.k);
        // Lemma 4.3: fold in R_{k−2}, …, R_0.
        let mut set: Vec<Sample<T>> = vec![seed];
        for j in 2..=self.k {
            let i = self.k - j; // engine index supplying S^{n−k+j}_1
            let r = self.engines[i]
                .sample(&mut self.rng)
                .expect("engine i's domain contains engine k-1's domain");
            // "Element b+1" of Lemma 4.2: the newest element of engine i's
            // domain = the arrival with exactly i newer arrivals.
            let newcomer = active_recent[active_recent.len() - 1 - i].clone();
            if set.iter().any(|s| s.index() == r.index()) {
                set.push(newcomer);
            } else {
                set.push(r);
            }
        }
        debug_assert_eq!(set.len(), self.k);
        debug_assert!(
            {
                let mut idx: Vec<u64> = set.iter().map(|s| s.index()).collect();
                idx.sort_unstable();
                idx.windows(2).all(|w| w[0] != w[1])
            },
            "without-replacement sample contains a duplicate"
        );
        Some(set)
    }

    fn k(&self) -> usize {
        self.k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use swsample_stats::chi_square_uniform_test;

    /// One element per tick for `ticks` ticks, then query.
    fn drive(
        t0: u64,
        k: usize,
        ticks: u64,
        seed: u64,
    ) -> (TsSamplerWor<u64, SmallRng>, Option<Vec<Sample<u64>>>) {
        let mut s = TsSamplerWor::new(t0, k, SmallRng::seed_from_u64(seed));
        for tick in 0..ticks {
            s.advance_time(tick);
            s.insert(tick);
        }
        let out = s.sample_k();
        (s, out)
    }

    #[test]
    fn empty_returns_none() {
        let mut s: TsSamplerWor<u64, _> = TsSamplerWor::new(5, 3, SmallRng::seed_from_u64(0));
        assert!(s.sample_k().is_none());
    }

    #[test]
    fn distinct_and_active() {
        for seed in 0..100 {
            let (_, out) = drive(16, 5, 50, seed);
            let out = out.expect("nonempty");
            assert_eq!(out.len(), 5);
            let mut idx: Vec<u64> = out.iter().map(|s| s.index()).collect();
            idx.sort_unstable();
            for w in idx.windows(2) {
                assert_ne!(w[0], w[1], "duplicate sample");
            }
            for &i in &idx {
                // Active at tick 49: ts in 34..=49 -> index == ts here.
                assert!((34..=49).contains(&i), "index {i} outside window");
            }
        }
    }

    #[test]
    fn returns_all_when_window_small() {
        // Window of width 3, k = 5: only 3 active elements.
        let (_, out) = drive(3, 5, 50, 7);
        let out = out.expect("nonempty");
        let mut idx: Vec<u64> = out.iter().map(|s| s.index()).collect();
        idx.sort_unstable();
        assert_eq!(idx, vec![47, 48, 49]);
    }

    #[test]
    fn marginal_inclusion_uniform() {
        // Window of n = 8 active elements, k = 3: every element appears with
        // probability 3/8; positions must be uniform.
        let (t0, k, ticks) = (8u64, 3usize, 30u64);
        let trials = 25_000u64;
        let mut counts = vec![0u64; t0 as usize];
        for t in 0..trials {
            let (_, out) = drive(t0, k, ticks, 60_000 + t);
            for s in out.expect("nonempty") {
                counts[(s.index() - (ticks - t0)) as usize] += 1;
            }
        }
        let out = chi_square_uniform_test(&counts);
        assert!(
            out.p_value > 1e-4,
            "WOR marginals not uniform: p = {}",
            out.p_value
        );
    }

    #[test]
    fn pairwise_inclusion_uniform() {
        // n = 5, k = 2: all 10 unordered pairs equally likely.
        let (t0, k, ticks) = (5u64, 2usize, 20u64);
        let trials = 30_000u64;
        let n = t0;
        let mut counts = vec![0u64; (n * (n - 1) / 2) as usize];
        for t in 0..trials {
            let (_, out) = drive(t0, k, ticks, 90_000 + t);
            let out = out.expect("nonempty");
            let mut pos: Vec<u64> = out.iter().map(|s| s.index() - (ticks - t0)).collect();
            pos.sort_unstable();
            let (a, b) = (pos[0], pos[1]);
            let rank = a * n - a * (a + 1) / 2 + (b - a - 1);
            counts[rank as usize] += 1;
        }
        let out = chi_square_uniform_test(&counts);
        assert!(
            out.p_value > 1e-4,
            "WOR pairs not uniform: p = {}",
            out.p_value
        );
    }

    #[test]
    fn bursty_stream_stays_distinct() {
        let mut s = TsSamplerWor::new(6, 4, SmallRng::seed_from_u64(11));
        let mut rng = SmallRng::seed_from_u64(12);
        let mut idx = 0u64;
        for tick in 0..300u64 {
            s.advance_time(tick);
            for _ in 0..rng.gen_range(0..5u64) {
                s.insert(idx);
                idx += 1;
            }
            if let Some(out) = s.sample_k() {
                let mut seen: Vec<u64> = out.iter().map(|x| x.index()).collect();
                seen.sort_unstable();
                let len = seen.len();
                seen.dedup();
                assert_eq!(seen.len(), len, "duplicates at tick {tick}");
                for smp in &out {
                    assert!(tick - smp.timestamp() < 6, "expired sample at tick {tick}");
                }
            }
        }
    }

    #[test]
    fn memory_scales_as_k_log_n() {
        let (t0, ticks) = (256u64, 1024u64);
        let mut peaks = Vec::new();
        for &k in &[1usize, 2, 4, 8] {
            let mut s = TsSamplerWor::new(t0, k, SmallRng::seed_from_u64(13));
            let mut peak = 0;
            for tick in 0..ticks {
                s.advance_time(tick);
                s.insert(tick);
                peak = peak.max(s.memory_words());
            }
            peaks.push(peak);
        }
        // Deterministic cap: k engines × 9·(2 log2(n)+3) + k aux + slack.
        let log_n = 8; // log2(256)
        for (i, &k) in [1usize, 2, 4, 8].iter().enumerate() {
            let bound = k * 9 * (2 * log_n + 3) + 3 * k + 16;
            assert!(
                peaks[i] <= bound,
                "k={k}: peak {} > bound {bound}",
                peaks[i]
            );
        }
    }

    #[test]
    fn single_sample_works() {
        let (mut s, _) = drive(10, 3, 40, 21);
        let one = s.sample().expect("nonempty");
        assert!(one.index() >= 30);
    }
}
