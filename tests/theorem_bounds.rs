//! Integration tests for the paper's headline claims: the **deterministic**
//! memory bounds of Theorems 2.1, 2.2, 3.9 and 4.4, enforced as hard
//! ceilings over long and adversarial streams — the property no
//! previous method (chain, priority, over-sampling) can offer.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use swsample::core::seq::{SeqSamplerWor, SeqSamplerWr};
use swsample::core::ts::{TsSamplerWor, TsSamplerWr};
use swsample::core::{MemoryWords, WindowSampler};
use swsample::stream::{AdversarialStream, UniformGen};

/// Theorem 2.1 ceiling: each of the k instances holds at most two samples
/// of 3 words plus its skip-ahead next-acceptance index, plus 3 global
/// counters. Still O(k), still deterministic.
fn seq_wr_cap(k: usize) -> usize {
    7 * k + 3
}

/// Theorem 2.2 ceiling: two k-reservoirs plus counters.
fn seq_wor_cap(k: usize) -> usize {
    6 * k + 16
}

/// Theorem 3.9 ceiling for one engine at `n` active elements: at most
/// `2·log₂(n) + 3` buckets of 9 words, plus clock/width, per instance.
fn ts_engine_cap(n: u64) -> usize {
    let log_n = (64 - n.leading_zeros()) as usize;
    9 * (2 * log_n + 3) + 2
}

#[test]
fn theorem_2_1_bound_over_long_streams() {
    for &n in &[1u64, 2, 7, 64, 1000, 65_536] {
        for &k in &[1usize, 3, 17] {
            let mut s = SeqSamplerWr::new(n, k, SmallRng::seed_from_u64(n ^ k as u64));
            for i in 0..5_000u64 {
                s.insert(i);
                assert!(
                    s.memory_words() <= seq_wr_cap(k),
                    "n={n}, k={k}: {} words > cap {}",
                    s.memory_words(),
                    seq_wr_cap(k)
                );
            }
        }
    }
}

#[test]
fn theorem_2_2_bound_over_long_streams() {
    for &n in &[1u64, 2, 7, 64, 1000, 65_536] {
        for &k in &[1usize, 3, 17] {
            let mut s =
                SeqSamplerWor::new(n, k, SmallRng::seed_from_u64(n.wrapping_mul(31) ^ k as u64));
            for i in 0..5_000u64 {
                s.insert(i);
                assert!(s.memory_words() <= seq_wor_cap(k), "n={n}, k={k}: over cap");
            }
        }
    }
}

#[test]
fn theorem_3_9_bound_on_bursty_streams() {
    let mut rng = SmallRng::seed_from_u64(7);
    for &t0 in &[1u64, 4, 64, 512] {
        for &k in &[1usize, 4] {
            let mut s = TsSamplerWr::new(t0, k, SmallRng::seed_from_u64(t0 ^ k as u64));
            let mut idx = 0u64;
            let mut max_active = 0u64;
            let mut active_window: std::collections::VecDeque<u64> = Default::default();
            for tick in 0..800u64 {
                s.advance_time(tick);
                let burst = rng.gen_range(0..16u64);
                for _ in 0..burst {
                    s.insert(idx);
                    idx += 1;
                    active_window.push_back(tick);
                }
                while active_window.front().is_some_and(|&ts| tick - ts >= t0) {
                    active_window.pop_front();
                }
                max_active = max_active.max(active_window.len() as u64);
                let cap = k * ts_engine_cap(max_active.max(1)) + 2;
                assert!(
                    s.memory_words() <= cap,
                    "t0={t0}, k={k}, tick={tick}: {} words > cap {cap} (n≤{max_active})",
                    s.memory_words()
                );
            }
        }
    }
}

#[test]
fn theorem_4_4_bound_on_bursty_streams() {
    let mut rng = SmallRng::seed_from_u64(13);
    for &t0 in &[8u64, 128] {
        for &k in &[2usize, 8] {
            let mut s = TsSamplerWor::new(t0, k, SmallRng::seed_from_u64(t0 ^ k as u64));
            let mut idx = 0u64;
            for tick in 0..600u64 {
                s.advance_time(tick);
                for _ in 0..rng.gen_range(0..8u64) {
                    s.insert(idx);
                    idx += 1;
                }
                // Global worst-case: n ≤ t0 · 8 arrivals.
                let cap = k * (ts_engine_cap(t0 * 8) + 3) + 19;
                assert!(s.memory_words() <= cap, "t0={t0}, k={k}: over cap");
            }
        }
    }
}

#[test]
fn adversarial_schedule_respects_caps() {
    // The Lemma 3.10 stream is the worst case for priority sampling; ours
    // must stay within the deterministic cap through the whole critical
    // region.
    for &t0 in &[4u64, 8] {
        let mut gen = AdversarialStream::new(UniformGen::new(1 << 16), t0, 1 << 12);
        let mut rng = SmallRng::seed_from_u64(17);
        let mut s = TsSamplerWr::new(t0, 1, SmallRng::seed_from_u64(19));
        let mut now = 0u64;
        let mut inserted = 0u64;
        while now <= 2 * t0 + 4 {
            let ev = gen.next_event(&mut rng);
            now = ev.timestamp;
            s.advance_time(now);
            s.insert(ev.value);
            inserted += 1;
            // n never exceeds total inserted.
            let cap = ts_engine_cap(inserted) + 2;
            assert!(
                s.memory_words() <= cap,
                "t0={t0}: {} > {cap}",
                s.memory_words()
            );
        }
    }
}

#[test]
fn memory_reports_are_exact_not_estimates() {
    // memory_words is a pure function of state: two identically-seeded
    // samplers report identical trajectories.
    let mut a = SeqSamplerWor::new(37, 5, SmallRng::seed_from_u64(23));
    let mut b = SeqSamplerWor::new(37, 5, SmallRng::seed_from_u64(23));
    for i in 0..500u64 {
        a.insert(i);
        b.insert(i);
        assert_eq!(a.memory_words(), b.memory_words());
    }
}
