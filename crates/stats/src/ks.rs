//! One-sample Kolmogorov–Smirnov test against the uniform distribution.
//!
//! Used by tests that check *continuous* quantities (e.g. normalized sample
//! positions inside a window) rather than category counts.

/// KS statistic `D_n = sup |F_n(x) − x|` for samples assumed to lie in
/// `[0, 1]` against the Uniform(0,1) CDF.
///
/// # Panics
/// Panics if `samples` is empty or contains values outside `[0, 1]`.
pub fn ks_statistic_uniform(samples: &[f64]) -> f64 {
    assert!(!samples.is_empty(), "ks_statistic_uniform: empty sample");
    let mut xs: Vec<f64> = samples.to_vec();
    for &x in &xs {
        assert!((0.0..=1.0).contains(&x), "ks: sample {x} outside [0,1]");
    }
    xs.sort_by(|a, b| a.partial_cmp(b).expect("ks: NaN in samples"));
    let n = xs.len() as f64;
    let mut d = 0.0f64;
    for (i, &x) in xs.iter().enumerate() {
        let lo = x - i as f64 / n;
        let hi = (i as f64 + 1.0) / n - x;
        d = d.max(lo).max(hi);
    }
    d
}

/// Asymptotic p-value for the one-sample KS test via the Kolmogorov
/// distribution series `Q(λ) = 2 Σ (−1)^{j−1} e^{−2 j² λ²}` with the
/// standard finite-n correction `λ = (√n + 0.12 + 0.11/√n) · D`.
pub fn ks_test_uniform(samples: &[f64]) -> f64 {
    let d = ks_statistic_uniform(samples);
    let n = samples.len() as f64;
    let sqrt_n = n.sqrt();
    let lambda = (sqrt_n + 0.12 + 0.11 / sqrt_n) * d;
    kolmogorov_q(lambda)
}

/// Kolmogorov survival function `Q(λ)`.
fn kolmogorov_q(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for j in 1..=100 {
        let term = (-2.0 * (j as f64) * (j as f64) * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-16 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evenly_spaced_samples_have_small_statistic() {
        // Midpoints of n equal bins: D = 1/(2n).
        let n = 100;
        let xs: Vec<f64> = (0..n).map(|i| (i as f64 + 0.5) / n as f64).collect();
        let d = ks_statistic_uniform(&xs);
        assert!((d - 1.0 / (2.0 * n as f64)).abs() < 1e-12, "d = {d}");
        assert!(ks_test_uniform(&xs) > 0.99);
    }

    #[test]
    fn clustered_samples_reject() {
        let xs = vec![0.01; 200];
        let p = ks_test_uniform(&xs);
        assert!(p < 1e-6, "p = {p}");
    }

    #[test]
    fn statistic_for_single_point() {
        // One sample at 0.5: D = 0.5.
        let d = ks_statistic_uniform(&[0.5]);
        assert!((d - 0.5).abs() < 1e-12);
    }

    #[test]
    fn kolmogorov_q_monotone_and_bounded() {
        let mut prev = 1.0;
        for i in 0..60 {
            let q = kolmogorov_q(i as f64 * 0.1);
            assert!((0.0..=1.0).contains(&q));
            assert!(q <= prev + 1e-12);
            prev = q;
        }
    }

    #[test]
    fn kolmogorov_q_reference() {
        // Q(1.3581) ~= 0.05 (classic critical value)
        let q = kolmogorov_q(1.3581);
        assert!((q - 0.05).abs() < 2e-3, "q = {q}");
    }

    #[test]
    #[should_panic]
    fn rejects_out_of_range() {
        ks_statistic_uniform(&[1.5]);
    }
}
