//! [`MultiStreamEngine`] — a sharded, multi-core fleet of per-key window
//! samplers over a slab key registry, with a struct-of-arrays fast path
//! for homogeneous fleets.
//!
//! The paper maintains *one* window sample; a serving system maintains
//! one **per user**: millions of independent logical streams multiplexed
//! over one physical event feed, each answering the same window queries.
//! This engine is that shape. It owns a sharded registry of per-key
//! samplers, all built lazily from a single template [`SamplerSpec`]
//! (each key gets its own derived RNG seed, so per-key sample streams
//! are mutually independent), and ingests a keyed batch in shard-major,
//! key-major order so the per-sampler batch fast paths (skip-ahead hops,
//! engine-major timestamp ingestion) still fire even when arrivals
//! interleave keys.
//!
//! The module splits along the engine's three concerns:
//!
//! * `registry` — key hashing, seed derivation, and the open-addressing
//!   slab index (`key → u32` slot ids shared by both backends);
//! * `erased` / `soa` — the two per-key **fleet backends**: one boxed
//!   [`ErasedWindowSampler`] per key (fully general), or the
//!   struct-of-arrays fleets of [`swsample_core::soa`] (homogeneous
//!   templates, field-major state, batch dispatch — see below);
//! * `parallel` — the skew-aware work-stealing scheduler.
//!
//! # The slab key registry
//!
//! Each shard keeps its keys in an **open-addressing index table**
//! (linear probing, `u32` slot ids, load factor ≤ ½) over a **contiguous
//! key slab**, appended in first-touch order. The hot probe loop touches
//! two dense arrays (table, key slab) instead of hash-map nodes
//! scattered across the heap, and under skewed (zipf) traffic the
//! hottest keys arrive first, so their entries cluster at the front and
//! stay cache-resident. Batched ingestion resolves every event to its
//! slot id up front, then dispatches grouped per slot (`slot << 32 |
//! position` words, preserving per-key arrival order).
//!
//! # Fleet backends
//!
//! A fleet built from one template is *homogeneous*: the algorithm,
//! window, and `k` are fleet-wide constants — only per-key state
//! differs. The erased backend still pays per-key heap boxes (~3
//! scattered cache lines each) and a per-element vtable call for that
//! nonexistent heterogeneity; at 10⁵ keys the box chase, not the
//! sampler math, dominates. The SoA backend
//! ([`FleetBackend::Soa`]) stores per-key state field-major
//! inside the shard slab — dense hot-head arrays, inline `k`-slot sample
//! blocks, cold RNG lanes — and selects the template's family **once per
//! batch**, running a monomorphized loop per shard. Backend choice is
//! automatic ([`FleetBackend::Auto`]: SoA whenever the template
//! [is eligible](SamplerSpec::soa_eligible)) and overridable; both
//! backends are sample-for-sample **bit-identical** because per-key
//! seeds derive identically and the SoA kernels replay the boxed
//! samplers' RNG-draw order exactly.
//!
//! # Parallel ingestion and concurrent queries
//!
//! Shard-ownership makes multi-core ingestion embarrassingly safe: a
//! key's sampler lives in exactly one shard, so processing different
//! shards on different threads cannot race.
//! [`MultiStreamEngine::ingest_parallel`] carves a keyed batch into
//! **shard-run units** (one per non-empty shard, arrival order
//! preserved), orders them largest-first (LPT), and publishes them in a
//! lock-free claim queue that persistent stealer threads — and the
//! calling thread itself — drain by atomic cursor, so a zipf-hot shard
//! no longer pins one worker while the rest idle. Batches are
//! double-buffered: the call prepares and publishes its epoch while the
//! previous epoch's tail drains, and returns once every unit of its own
//! epoch is claimed (the two-slot handshake in the `parallel` module
//! replaces
//! the old per-batch completion barrier). Per-key RNG seeds are
//! splitmix-derived from the key alone, each shard is exactly one unit
//! per epoch (one-shard-one-worker, counter-asserted), and epochs never
//! overlap in execution, so the resulting per-key samples are
//! **bit-identical for every thread count** — including the serial
//! [`ingest`](MultiStreamEngine::ingest) path. `threads = 1` (the
//! default) never spawns a pool. Scheduler behavior is observable via
//! [`MultiStreamEngine::parallel_stats`].
//!
//! Shards sit behind `RwLock`s: ingestion takes a shard's write lock,
//! while queries try a **shared read-lock fast path** first (RNG-free
//! queries — seq-WR `sample_k`/`sample`, whole-stream reservoir reads —
//! run concurrently with each other and with ingestion of other
//! shards), falling back to the write lock only for RNG-consuming
//! queries. Every query and checkpoint first waits on the epoch
//! watermark (all published batches applied), so sequential
//! ingest-then-read still observes exactly the ingested prefix.
//! `ingest_parallel` takes `&self`, so queries may run during
//! ingestion; batches submitted concurrently from several threads are
//! applied atomically per shard but in unspecified relative order —
//! determinism is stated for sequentially submitted batches. A
//! deferred sampler panic from an outstanding epoch surfaces at the
//! next ingest call or [`MultiStreamEngine::flush`].
//!
//! Memory scales as the paper promises per key: a fleet of `m` active
//! keys with a sequence-WR template costs at most `m · (7k + 3)` words —
//! deterministic, because every per-key sampler inherits its theorem's
//! hard ceiling, on either backend. [`MultiStreamEngine::memory_words`]
//! and [`MultiStreamEngine::max_key_memory_words`] expose both sides of
//! that accounting, and
//! [`MultiStreamEngine::registry_overhead_words`] reports the registry
//! scaffolding (index table + key slab + per-key store bookkeeping) that
//! the paper's §1.4 model excludes.
//!
//! ```
//! use swsample_core::spec::SamplerSpec;
//! use swsample_stream::MultiStreamEngine;
//!
//! // One 100-arrival WR window per user key.
//! let spec: SamplerSpec = "--window seq --n 100 --k 4 --seed 7".parse().unwrap();
//! let mut engine: MultiStreamEngine<u64, u64> = MultiStreamEngine::new(spec).unwrap();
//! engine.ingest(&[(17, 0, 111), (42, 0, 222), (17, 1, 333)]);
//! assert_eq!(engine.num_keys(), 2);
//! assert_eq!(engine.sample_k(&17).unwrap().len(), 4);
//! assert!(engine.sample_k(&7).is_none(), "untouched key has no window");
//! ```
//!
//! Sharding uses an FxHash-style multiply-rotate hash (the rustc /
//! Firefox workhorse) implemented locally — fast, deterministic across
//! runs, and dependency-free.

mod erased;
mod parallel;
mod registry;
mod soa;

use std::hash::Hash;
use std::sync::atomic::AtomicBool;
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

use swsample_core::spec::{FleetBackend, SamplerFactory, SamplerSpec, SpecError, WindowKind};
use swsample_core::state::{SamplerState, StateError};
use swsample_core::{ErasedWindowSampler, MemoryWords, Sample};

use self::erased::ErasedStore;
use self::parallel::{ingest_guarded, Epoch, WorkStealPool};
use self::registry::{fx_hash_key, mix_seed, KeyRegistry, SLOT_MASK};
use self::soa::SoaStore;

pub use self::parallel::{ParallelStats, WorkerPanic, WorkerStats};
pub use self::registry::{FxBuildHasher, FxHasher};

/// One keyed event: `(key, now, value)`. `now` is the arrival timestamp
/// for timestamp-window templates; sequence templates ignore it.
pub type KeyedEvent<K, T> = (K, u64, T);

/// A shard's per-batch routing entry: `(position, key hash)`. Positions
/// index into the batch handed to `Shard::ingest` alongside the route.
pub(crate) type Route = Vec<(u32, u64)>;

/// A shard's per-key sampler storage: one of the two fleet backends,
/// slot-aligned with the shard's [`KeyRegistry`].
enum Store<T: Clone> {
    Erased(ErasedStore<T>),
    Soa(SoaStore<T>),
}

impl<T: Clone + 'static> Store<T> {
    fn push_key(&mut self, seed: u64) {
        match self {
            Store::Erased(s) => s.push_key(seed),
            Store::Soa(s) => s.push_key(seed),
        }
    }

    /// Read-lock query fast path; `None` = this query needs `&mut`.
    fn shared_sample_k(&self, slot: usize) -> Option<Option<Vec<Sample<T>>>> {
        match self {
            Store::Erased(_) => None, // erased queries are &mut by trait
            Store::Soa(s) => s.shared_sample_k(slot),
        }
    }

    fn shared_sample(&self, slot: usize) -> Option<Option<Sample<T>>> {
        match self {
            Store::Erased(_) => None,
            Store::Soa(s) => s.shared_sample(slot),
        }
    }

    fn sample_k(&mut self, slot: usize) -> Option<Vec<Sample<T>>> {
        match self {
            Store::Erased(s) => s.sample_k(slot),
            Store::Soa(s) => s.sample_k(slot),
        }
    }

    fn sample(&mut self, slot: usize) -> Option<Sample<T>> {
        match self {
            Store::Erased(s) => s.sample(slot),
            Store::Soa(s) => s.sample(slot),
        }
    }

    fn memory_words(&self, slot: usize) -> usize {
        match self {
            Store::Erased(s) => s.memory_words(slot),
            Store::Soa(s) => s.memory_words(slot),
        }
    }

    fn overhead_words(&self) -> usize {
        match self {
            Store::Erased(s) => s.overhead_words(),
            Store::Soa(_) => 0, // state lives in the accounted slabs
        }
    }

    fn save_slot(&self, slot: usize) -> Option<SamplerState<T>> {
        match self {
            Store::Erased(s) => s.save_slot(slot),
            Store::Soa(s) => s.save_slot(slot),
        }
    }

    fn restore_slot(&mut self, slot: usize, state: SamplerState<T>) -> Result<(), StateError> {
        match self {
            Store::Erased(s) => s.restore_slot(slot, state),
            Store::Soa(s) => s.restore_slot(slot, state),
        }
    }
}

/// One shard: the key registry plus the per-key sampler store, and
/// everything needed to materialize new keys without consulting the
/// engine (so a worker thread can run a shard in isolation).
pub(crate) struct Shard<K, T: Clone> {
    registry: KeyRegistry<K>,
    store: Store<T>,
    /// Timestamp-window template: key runs must be split into
    /// same-timestamp sub-runs and enter through `advance_and_insert`.
    /// Sequence / whole-stream templates ignore the clock entirely, so
    /// their runs dispatch per element regardless of timestamps.
    split_ts: bool,
    /// The template's seed; per-key seeds are splitmix-derived from it.
    template_seed: u64,
    /// Grouping scratch: `slot << 32 | position`, per batch.
    order: Vec<u64>,
    /// Run scratch: the values of one per-key (sub-)run.
    run: Vec<T>,
}

/// Per-element dispatch in arrival order: the shape sequence and
/// whole-stream families take (`insert` is their reference path —
/// `insert_batch` is defined as its exact repetition, so this is
/// bit-identical to any grouping, and the skip fast path is two
/// compares, cheaper than a slot sort). `sink` is monomorphized per
/// call site, so each store family gets its own tight loop.
#[inline]
fn dispatch_seq<K, T: Clone>(
    order: &[u64],
    batch: &[KeyedEvent<K, T>],
    mut sink: impl FnMut(usize, T),
) {
    for &word in order {
        let (slot, pos) = ((word >> 32) as usize, (word & SLOT_MASK) as usize);
        sink(slot, batch[pos].2.clone());
    }
}

/// Key-major run dispatch over a sorted `order`: one `sink(slot, run)`
/// call per maximal same-slot segment (per-slot arrival order preserved
/// — positions sort ascending within a slot). Sorting is legal because
/// per-key samplers are independent: cross-key interleaving never
/// affects any key's samples, only its own arrival order does. The SoA
/// fleets turn each run into O(acceptances + 1) work via their
/// `insert_run` kernels, so the per-element state walk disappears for
/// the (overwhelming) skip case.
#[inline]
fn dispatch_runs(order: &[u64], mut sink: impl FnMut(usize, &[u64])) {
    let mut i = 0;
    while i < order.len() {
        let slot = (order[i] >> 32) as usize;
        let mut end = i + 1;
        while end < order.len() && (order[end] >> 32) as usize == slot {
            end += 1;
        }
        sink(slot, &order[i..end]);
        i = end;
    }
}

/// Grouped dispatch for timestamp families: slot-major, then maximal
/// same-timestamp sub-runs in arrival order, one `sink` call each. Their
/// engine-major batch path is the fast path *and* orders RNG draws
/// differently from per-element ingestion, so every thread count (and
/// the serial path) must use this same grouping. `order` must already be
/// sorted.
#[inline]
fn dispatch_ts<K, T: Clone>(
    order: &[u64],
    batch: &[KeyedEvent<K, T>],
    run: &mut Vec<T>,
    mut sink: impl FnMut(usize, u64, &[T]),
) {
    let mut i = 0;
    while i < order.len() {
        let slot = (order[i] >> 32) as usize;
        let mut end = i + 1;
        while end < order.len() && (order[end] >> 32) as usize == slot {
            end += 1;
        }
        let mut j = i;
        while j < end {
            let now = batch[(order[j] & SLOT_MASK) as usize].1;
            run.clear();
            while j < end {
                let ev = &batch[(order[j] & SLOT_MASK) as usize];
                if ev.1 != now {
                    break;
                }
                run.push(ev.2.clone());
                j += 1;
            }
            sink(slot, now, run);
        }
        i = end;
    }
}

impl<K: Hash + Eq + Clone, T: Clone + 'static> Shard<K, T> {
    fn new(
        template: &SamplerSpec,
        factory: SamplerFactory<T>,
        backend: FleetBackend,
    ) -> Result<Self, SpecError> {
        let store = match backend {
            FleetBackend::Soa => Store::Soa(SoaStore::new(template)?),
            _ => Store::Erased(ErasedStore::new(template.clone(), factory)),
        };
        Ok(Self {
            registry: KeyRegistry::new(),
            store,
            split_ts: matches!(template.window, WindowKind::Timestamp(_)),
            template_seed: template.seed,
            order: Vec::new(),
            run: Vec::new(),
        })
    }

    /// Ingest this shard's portion of a keyed batch. `route` lists the
    /// shard's events as `(position into batch, key hash)` in arrival
    /// order; grouping per slot preserves that order, so the result is
    /// independent of how the batch was interleaved or which thread runs
    /// the shard.
    pub(crate) fn ingest(&mut self, batch: &[KeyedEvent<K, T>], route: &[(u32, u64)]) {
        // Probe loop first, dispatch loop second: probe iterations are
        // independent (table + key loads), so their cache misses overlap,
        // and the dispatch loop then starts from warm slab entries with
        // its sampler-state misses overlapping each other instead of
        // queueing behind each element's probe chain. The `match` on the
        // store sits *outside* the element loop: one family selection per
        // shard-batch, monomorphized loop bodies inside.
        let mut order = std::mem::take(&mut self.order);
        order.clear();
        // Warm pass: touch every event's home bucket in a branchless
        // loop. The loads are mutually independent, so they overlap up
        // to the memory system's parallelism; the probe loop right after
        // then runs against warm lines instead of serializing one miss
        // per element behind its branches.
        let mut warm = 0u64;
        for &(_, hash) in route {
            warm ^= self.registry.home_bucket(hash);
        }
        std::hint::black_box(warm);
        for &(pos, hash) in route {
            let (slot, is_new) = self.registry.get_or_insert(hash, &batch[pos as usize].0);
            if is_new {
                self.store.push_key(mix_seed(self.template_seed, hash));
            }
            order.push((slot as u64) << 32 | pos as u64);
        }
        if !self.split_ts {
            match &mut self.store {
                // The erased path keeps per-element arrival order: the
                // trait surface has no run kernel, and a slot sort would
                // only add cost ahead of the same vtable calls.
                Store::Erased(s) => {
                    dispatch_seq(&order, batch, |slot, v| s.sampler_mut(slot).insert(v))
                }
                Store::Soa(store) => {
                    order.sort_unstable();
                    let run_value = |run: &[u64], off: u64| {
                        batch[(run[off as usize] & SLOT_MASK) as usize].2.clone()
                    };
                    match store {
                        SoaStore::SeqWr(f) => dispatch_runs(&order, |slot, run| {
                            f.insert_run(slot, run.len() as u64, |off| run_value(run, off))
                        }),
                        SoaStore::SeqWor(f) => dispatch_runs(&order, |slot, run| {
                            f.insert_run(slot, run.len() as u64, |off| run_value(run, off))
                        }),
                        SoaStore::StreamL(f) => dispatch_runs(&order, |slot, run| {
                            f.insert_run(slot, run.len() as u64, |off| run_value(run, off))
                        }),
                        _ => unreachable!("timestamp templates set split_ts"),
                    }
                }
            }
            self.order = order;
            return;
        }
        order.sort_unstable();
        let mut run = std::mem::take(&mut self.run);
        match &mut self.store {
            Store::Erased(s) => dispatch_ts(&order, batch, &mut run, |slot, now, r| {
                s.sampler_mut(slot).advance_and_insert(now, r)
            }),
            Store::Soa(SoaStore::TsWr(f)) => {
                dispatch_ts(&order, batch, &mut run, |slot, now, r| {
                    f.advance_and_insert(slot, now, r)
                })
            }
            Store::Soa(SoaStore::TsWor(f)) => {
                dispatch_ts(&order, batch, &mut run, |slot, now, r| {
                    f.advance_and_insert(slot, now, r)
                })
            }
            Store::Soa(_) => unreachable!("sequence/stream templates never split timestamps"),
        }
        run.clear();
        self.order = order;
        self.run = run;
    }

    /// Registry + store scaffolding in words (8 bytes).
    fn overhead_words(&self) -> usize {
        self.registry.overhead_words() + self.store.overhead_words()
    }
}

/// A sharded registry of independent per-key window samplers, all
/// described by one template [`SamplerSpec`]. See the [module
/// docs](self) for the registry layout, the two fleet backends, and the
/// parallel-ingestion model.
pub struct MultiStreamEngine<K, T: Clone> {
    template: SamplerSpec,
    /// The resolved backend (never [`FleetBackend::Auto`]).
    backend: FleetBackend,
    /// The per-key sampler factory, retained for shard rebuilds
    /// ([`set_shards`](Self::set_shards)).
    factory: SamplerFactory<T>,
    shards: Vec<Arc<RwLock<Shard<K, T>>>>,
    shard_mask: u64,
    /// Worker threads `ingest_parallel` uses (1 = inline, no pool).
    threads: usize,
    pool: Option<WorkStealPool<K, T>>,
    /// Per-shard "executing" flags the scheduler uses to assert the
    /// one-shard-one-worker invariant (shared into each epoch).
    exec_flags: Arc<Vec<AtomicBool>>,
    /// Serial-path scratch: per-shard routes into the caller's batch,
    /// reused across batches.
    routes: Vec<Route>,
}

impl<K, T: Clone> std::fmt::Debug for MultiStreamEngine<K, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiStreamEngine")
            .field("template", &self.template)
            .field("backend", &self.backend)
            .field("shards", &self.shards.len())
            .field("threads", &self.threads)
            .finish()
    }
}

impl<K, T: Clone> MultiStreamEngine<K, T> {
    /// Wait until every published parallel epoch has been applied (two
    /// atomic loads when nothing is outstanding). Every read path calls
    /// this so sequential ingest-then-query semantics survive the
    /// double-buffered pipeline; deferred panics stay parked for the
    /// next ingest/flush.
    #[inline]
    fn sync(&self) {
        if let Some(pool) = &self.pool {
            pool.barrier();
        }
    }

    /// Snapshot of the work-stealing scheduler's lifetime counters:
    /// epochs applied, per-worker units claimed/stolen and busy time,
    /// and the one-shard-one-worker violation count (always 0 unless
    /// the scheduler is broken). All zeros while `threads == 1` (the
    /// inline path never publishes epochs).
    pub fn parallel_stats(&self) -> ParallelStats {
        match &self.pool {
            Some(pool) => pool.stats(),
            None => ParallelStats {
                threads: self.threads,
                ..ParallelStats::default()
            },
        }
    }
}

impl<K: Hash + Eq + Clone, T: Clone + Send + Sync + 'static> MultiStreamEngine<K, T> {
    /// Default shard count: enough to keep per-shard tables small (and
    /// parallel ingestion balanced) without bloating empty engines.
    pub const DEFAULT_SHARDS: usize = 16;

    /// Engine whose per-key samplers are built by
    /// [`SamplerSpec::build`] — i.e. the template must use a core-owned
    /// algorithm (paper or reservoir-l). Validates (and test-builds) the
    /// template eagerly; backend is chosen automatically.
    pub fn new(template: SamplerSpec) -> Result<Self, SpecError> {
        Self::with_factory(template, Self::DEFAULT_SHARDS, SamplerSpec::build::<T>)
    }

    /// Engine with an explicit shard count and sampler factory. Pass
    /// `swsample_baselines::spec::build` to allow baseline-algorithm
    /// templates. `shards` is rounded up to a power of two; the backend
    /// is chosen automatically ([`FleetBackend::Auto`]).
    pub fn with_factory(
        template: SamplerSpec,
        shards: usize,
        factory: SamplerFactory<T>,
    ) -> Result<Self, SpecError> {
        Self::build(template, shards, factory, FleetBackend::Auto)
    }

    fn build(
        template: SamplerSpec,
        shards: usize,
        factory: SamplerFactory<T>,
        backend: FleetBackend,
    ) -> Result<Self, SpecError> {
        // Fail now, not on the millionth event: the factory must accept
        // the template (validity + algorithm coverage in one probe), for
        // either backend.
        factory(&template)?;
        let backend = backend.resolve(&template);
        let shards = shards.max(1).next_power_of_two();
        let mut slabs = Vec::with_capacity(shards);
        for _ in 0..shards {
            slabs.push(Arc::new(RwLock::new(Shard::new(
                &template, factory, backend,
            )?)));
        }
        Ok(Self {
            template,
            backend,
            factory,
            shard_mask: shards as u64 - 1,
            shards: slabs,
            threads: 1,
            pool: None,
            exec_flags: Arc::new((0..shards).map(|_| AtomicBool::new(false)).collect()),
            routes: (0..shards).map(|_| Vec::new()).collect(),
        })
    }

    /// The template every per-key sampler is built from (per-key seeds
    /// are derived from its `seed`).
    pub fn template(&self) -> &SamplerSpec {
        &self.template
    }

    /// The resolved fleet backend (never [`FleetBackend::Auto`]).
    pub fn backend(&self) -> FleetBackend {
        self.backend
    }

    /// Number of shards (a power of two).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of keys with materialized samplers.
    pub fn num_keys(&self) -> usize {
        self.sync();
        self.shards
            .iter()
            .map(|s| self.read(s).registry.len())
            .sum()
    }

    /// Worker threads [`ingest_parallel`](Self::ingest_parallel) uses.
    pub fn num_threads(&self) -> usize {
        self.threads
    }

    #[inline]
    fn shard_of(&self, hash: u64) -> usize {
        // Fx mixes well in the high bits; fold them down before masking.
        ((hash >> 32) ^ hash) as usize & self.shard_mask as usize
    }

    #[inline]
    #[allow(clippy::type_complexity)]
    fn read<'a>(&self, shard: &'a Arc<RwLock<Shard<K, T>>>) -> RwLockReadGuard<'a, Shard<K, T>> {
        shard.read().expect("shard lock poisoned")
    }

    #[inline]
    #[allow(clippy::type_complexity)]
    fn write<'a>(&self, shard: &'a Arc<RwLock<Shard<K, T>>>) -> RwLockWriteGuard<'a, Shard<K, T>> {
        shard.write().expect("shard lock poisoned")
    }

    /// Ingest a keyed batch: `(key, now, value)` triples with
    /// non-decreasing `now` per key (for timestamp-window templates;
    /// sequence templates ignore `now`).
    ///
    /// Events are routed per shard, resolved to slab slots, and
    /// dispatched grouped (preserving per-key arrival order), so each
    /// key's run enters its sampler through the batch fast paths even on
    /// heavily interleaved feeds. Samplers for unseen keys are created
    /// lazily from the template. The result is bit-identical to
    /// [`ingest_parallel`](Self::ingest_parallel) at any thread count —
    /// and identical across fleet backends.
    ///
    /// # Panics
    /// Panics if a key's timestamps run backwards (the per-key sampler's
    /// clock contract), or if the batch exceeds `u32::MAX` events.
    pub fn ingest(&mut self, batch: &[KeyedEvent<K, T>]) {
        if batch.is_empty() {
            return;
        }
        assert!(
            batch.len() <= u32::MAX as usize,
            "batch exceeds u32 positions"
        );
        // A still-draining parallel epoch must fully apply before a
        // serial batch may touch the shards (per-shard batch order is
        // the determinism contract).
        self.sync();
        // Route without copying: each shard's route holds (position into
        // the caller's batch, key hash), so the serial path clones a key
        // only on first-touch materialization and a value only at its
        // sampler dispatch — owned per-shard copies are a shipping cost
        // the parallel path alone pays. Shards still run one at a time to
        // completion, keeping the working set (one index table + one slab
        // + its hot samplers) small.
        let mask = self.shard_mask;
        for route in &mut self.routes {
            route.clear();
        }
        for (pos, (key, _, _)) in batch.iter().enumerate() {
            let hash = fx_hash_key(key);
            let s = (((hash >> 32) ^ hash) & mask) as usize;
            self.routes[s].push((pos as u32, hash));
        }
        for (shard, route) in self.shards.iter().zip(&self.routes) {
            if !route.is_empty() {
                shard
                    .write()
                    .expect("shard lock poisoned")
                    .ingest(batch, route);
            }
        }
    }

    /// The key's current `k`-sample, or `None` if the key has never
    /// arrived or its window is empty.
    ///
    /// Queries whose family draws no query-time randomness (seq-WR,
    /// whole-stream reservoir contents) on the SoA backend run under the
    /// shard's shared read lock — concurrent readers never contend;
    /// everything else falls back to the write lock.
    pub fn sample_k(&self, key: &K) -> Option<Vec<Sample<T>>> {
        self.sync();
        let hash = fx_hash_key(key);
        let shard = &self.shards[self.shard_of(hash)];
        {
            let guard = self.read(shard);
            let slot = guard.registry.find(hash, key)?;
            if let Some(res) = guard.store.shared_sample_k(slot) {
                return res;
            }
        }
        let mut guard = self.write(shard);
        let slot = guard.registry.find(hash, key)?;
        guard.store.sample_k(slot)
    }

    /// [`sample_k`](Self::sample_k) for many keys in one pass, one
    /// result per input key in order. Keys are grouped by shard so each
    /// shard's lock is taken once (read first for the RNG-free fast
    /// path, write only for the keys that need it) — the scheduler tick
    /// of a server evaluating many standing queries against a
    /// snapshot-consistent shard view, without `keys.len()` lock
    /// round-trips.
    pub fn sample_k_many(&self, keys: &[K]) -> Vec<Option<Vec<Sample<T>>>> {
        self.sync();
        let mut out: Vec<Option<Vec<Sample<T>>>> = (0..keys.len()).map(|_| None).collect();
        // (position, hash) per shard, reusing the ingest routing shape.
        let mut by_shard: Vec<Vec<(usize, u64)>> =
            (0..self.shards.len()).map(|_| Vec::new()).collect();
        for (pos, key) in keys.iter().enumerate() {
            let hash = fx_hash_key(key);
            by_shard[self.shard_of(hash)].push((pos, hash));
        }
        for (shard, routed) in self.shards.iter().zip(&by_shard) {
            if routed.is_empty() {
                continue;
            }
            // Read pass: resolve slots and take every RNG-free sample.
            let mut pending: Vec<(usize, u64)> = Vec::new();
            {
                let guard = self.read(shard);
                for &(pos, hash) in routed {
                    if let Some(slot) = guard.registry.find(hash, &keys[pos]) {
                        match guard.store.shared_sample_k(slot) {
                            Some(res) => out[pos] = res,
                            None => pending.push((pos, hash)),
                        }
                    }
                }
            }
            if pending.is_empty() {
                continue;
            }
            // Write pass for the keys whose draw needs `&mut` state.
            let mut guard = self.write(shard);
            for (pos, hash) in pending {
                if let Some(slot) = guard.registry.find(hash, &keys[pos]) {
                    out[pos] = guard.store.sample_k(slot);
                }
            }
        }
        out
    }

    /// One uniform sample from the key's window, or `None` as in
    /// [`sample_k`](MultiStreamEngine::sample_k). Same read-lock fast
    /// path where the draw is RNG-free.
    pub fn sample(&self, key: &K) -> Option<Sample<T>> {
        self.sync();
        let hash = fx_hash_key(key);
        let shard = &self.shards[self.shard_of(hash)];
        {
            let guard = self.read(shard);
            let slot = guard.registry.find(hash, key)?;
            if let Some(res) = guard.store.shared_sample(slot) {
                return res;
            }
        }
        let mut guard = self.write(shard);
        let slot = guard.registry.find(hash, key)?;
        guard.store.sample(slot)
    }

    /// Run `f` against a key's boxed sampler (queries take `&mut` access
    /// — see [`swsample_core::WindowSampler`] on why); `None` if the key
    /// has no materialized sampler **or the engine runs the SoA backend**
    /// (struct-of-arrays state has no per-key trait object to hand out —
    /// use [`sample_k`](Self::sample_k)/[`sample`](Self::sample), or
    /// construct with [`FleetBackend::Erased`] where sampler-level
    /// introspection is needed).
    pub fn with_sampler<R>(
        &self,
        key: &K,
        f: impl FnOnce(&mut dyn ErasedWindowSampler<T>) -> R,
    ) -> Option<R> {
        self.sync();
        let hash = fx_hash_key(key);
        let mut shard = self.write(&self.shards[self.shard_of(hash)]);
        let slot = shard.registry.find(hash, key)?;
        match &mut shard.store {
            Store::Erased(s) => Some(f(s.sampler_mut(slot))),
            Store::Soa(_) => None,
        }
    }

    /// Has this key a materialized sampler?
    pub fn contains_key(&self, key: &K) -> bool {
        self.sync();
        let hash = fx_hash_key(key);
        self.read(&self.shards[self.shard_of(hash)])
            .registry
            .find(hash, key)
            .is_some()
    }

    /// All materialized keys (shard order, first-touch order within a
    /// shard). Cloned out because keys live behind the shard locks.
    pub fn keys(&self) -> Vec<K> {
        self.sync();
        self.shards
            .iter()
            .flat_map(|s| self.read(s).registry.keys().to_vec())
            .collect()
    }

    /// Largest single-key footprint in words — the quantity the paper's
    /// per-window theorems cap deterministically.
    pub fn max_key_memory_words(&self) -> usize {
        self.sync();
        self.shards
            .iter()
            .map(|s| {
                let shard = self.read(s);
                (0..shard.registry.len())
                    .map(|slot| shard.store.memory_words(slot))
                    .max()
                    .unwrap_or(0)
            })
            .max()
            .unwrap_or(0)
    }

    /// Registry scaffolding in words (8 bytes): the tagged index-table
    /// words, the slab keys, and per-key store bookkeeping (the boxed
    /// backend's fat pointers; zero on SoA, whose state lives in the
    /// accounted slabs). Outside the paper's §1.4 stream-element model —
    /// reported separately so fleet sizing can account for it; at the
    /// ≤ ½ load factor this is `2..=4` bucket words per key (depending
    /// on where the table sits between doublings) plus
    /// `size_of::<K>()/8` key words, plus 2 box words on the erased
    /// backend.
    pub fn registry_overhead_words(&self) -> usize {
        self.sync();
        self.shards
            .iter()
            .map(|s| self.read(s).overhead_words())
            .sum()
    }

    /// Checkpoint every materialized key: `(key, state)` pairs in
    /// shard-major, first-touch slot order, `O(k)` words per key.
    ///
    /// Records are **backend-neutral** — the SoA fleets emit exactly the
    /// state an equivalent boxed sampler would — so a checkpoint taken
    /// on one backend restores onto the other, and onto any shard or
    /// thread count, reproducing bit-identical samples.
    ///
    /// `Err(StateError::Unsupported)` if the template's family has no
    /// durable state (the non-fused `--independent` timestamp reference
    /// constructions, or externally supplied factories whose samplers
    /// opt out).
    pub fn save_states(&self) -> Result<Vec<(K, SamplerState<T>)>, StateError> {
        self.sync();
        let mut out = Vec::with_capacity(self.num_keys());
        for shard in &self.shards {
            let guard = self.read(shard);
            for (slot, key) in guard.registry.keys().iter().enumerate() {
                let state = guard.store.save_slot(slot).ok_or(StateError::Unsupported)?;
                out.push((key.clone(), state));
            }
        }
        Ok(out)
    }

    /// Restore a checkpoint taken by [`save_states`](Self::save_states)
    /// on an engine built from the **same template**: keys are
    /// materialized as needed (in the order given, which fixes slot
    /// order) and each key's sampler state is overwritten.
    ///
    /// On error the engine is left with the records before the failing
    /// one applied; callers treating restore as transactional should
    /// rebuild the engine. Mixed-family records fail with
    /// [`StateError::Mismatch`].
    pub fn restore_states(
        &mut self,
        states: impl IntoIterator<Item = (K, SamplerState<T>)>,
    ) -> Result<(), StateError> {
        self.sync();
        for (key, state) in states {
            let hash = fx_hash_key(&key);
            let shard = &self.shards[self.shard_of(hash)];
            let mut guard = shard.write().expect("shard lock poisoned");
            let (slot, is_new) = guard.registry.get_or_insert(hash, &key);
            if is_new {
                let seed = mix_seed(guard.template_seed, hash);
                guard.store.push_key(seed);
            }
            guard.store.restore_slot(slot, state)?;
        }
        Ok(())
    }
}

impl<K, T> MultiStreamEngine<K, T>
where
    K: Hash + Eq + Clone + Send + Sync + 'static,
    T: Clone + Send + Sync + 'static,
{
    /// Engine with an explicit shard count, factory, and worker-thread
    /// count for [`ingest_parallel`](Self::ingest_parallel); automatic
    /// backend.
    pub fn with_threads(
        template: SamplerSpec,
        shards: usize,
        factory: SamplerFactory<T>,
        threads: usize,
    ) -> Result<Self, SpecError> {
        Self::with_backend(template, shards, factory, threads, FleetBackend::Auto)
    }

    /// Engine with everything explicit, including the fleet backend.
    /// [`FleetBackend::Auto`] resolves to SoA when the template
    /// [is eligible](SamplerSpec::soa_eligible); an explicit
    /// [`FleetBackend::Soa`] over an ineligible template is an error.
    pub fn with_backend(
        template: SamplerSpec,
        shards: usize,
        factory: SamplerFactory<T>,
        threads: usize,
        backend: FleetBackend,
    ) -> Result<Self, SpecError> {
        let mut engine = Self::build(template, shards, factory, backend)?;
        engine.set_threads(threads);
        Ok(engine)
    }

    /// Set the worker-thread count for subsequent
    /// [`ingest_parallel`](Self::ingest_parallel) calls. `1` (the
    /// default) ingests inline; higher counts spawn the persistent
    /// stealer pool immediately (so `ingest_parallel` can take `&self`
    /// and run concurrently with queries). Capped at the shard count
    /// (extra workers could never hold a unit). Rescaling a live pool
    /// **reuses** its workers: growing spawns only the missing stealers,
    /// shrinking retires only the excess (each finishes its in-flight
    /// unit first) — scheduler counters persist across the rescale, and
    /// samples are unaffected (thread count never influences them).
    pub fn set_threads(&mut self, threads: usize) {
        let threads = threads.clamp(1, self.shards.len());
        if threads == self.threads {
            return;
        }
        self.threads = threads;
        match &mut self.pool {
            Some(pool) => pool.resize(threads),
            None if threads > 1 => self.pool = Some(WorkStealPool::spawn(threads)),
            None => {}
        }
    }

    /// Wait for every published batch to finish applying and surface a
    /// deferred [`WorkerPanic`], if one is parked.
    ///
    /// The double-buffered pipeline means
    /// [`try_ingest_parallel`](Self::try_ingest_parallel) can return
    /// before its own batch has fully drained (the report then arrives
    /// at the *next* call). Queries synchronize implicitly; call this
    /// at end-of-stream to collect the last batch's verdict explicitly.
    /// A no-op `Ok(())` on the inline (`threads == 1`) path.
    pub fn flush(&self) -> Result<(), WorkerPanic> {
        match &self.pool {
            Some(pool) => pool.flush(),
            None => Ok(()),
        }
    }

    /// Live rescale: change the shard count mid-stream by checkpointing
    /// every key ([`save_states`](Self::save_states)), rebuilding the
    /// shard array, and restoring. Per-key sample streams are untouched
    /// — seeds derive from keys alone and the state records are
    /// shard-layout-free — so the sample distribution (in fact, every
    /// future sample, bit for bit) is unchanged. `shards` is rounded up
    /// to a power of two; the worker-thread count is re-clamped to the
    /// new shard count.
    ///
    /// On `Err` the engine keeps its original shards, untouched.
    pub fn set_shards(&mut self, shards: usize) -> Result<(), StateError> {
        let shards = shards.max(1).next_power_of_two();
        if shards == self.shards.len() {
            return Ok(());
        }
        let states = self.save_states()?; // syncs: no epoch outlives the old shards
        let mut slabs = Vec::with_capacity(shards);
        for _ in 0..shards {
            slabs.push(Arc::new(RwLock::new(
                Shard::new(&self.template, self.factory, self.backend)
                    .expect("template validated at construction"),
            )));
        }
        let old_shards = std::mem::replace(&mut self.shards, slabs);
        let old_mask = std::mem::replace(&mut self.shard_mask, shards as u64 - 1);
        self.exec_flags = Arc::new((0..shards).map(|_| AtomicBool::new(false)).collect());
        self.routes = (0..shards).map(|_| Vec::new()).collect();
        if let Err(e) = self.restore_states(states) {
            // Restoring our own just-saved records onto same-template
            // shards cannot family-mismatch; keep the engine usable
            // anyway by reinstating the old shards.
            self.shards = old_shards;
            self.shard_mask = old_mask;
            self.exec_flags = Arc::new(
                (0..self.shards.len())
                    .map(|_| AtomicBool::new(false))
                    .collect(),
            );
            self.routes = (0..self.shards.len()).map(|_| Vec::new()).collect();
            return Err(e);
        }
        // Threads are capped at the shard count; re-apply the clamp
        // (reusing live stealers, as in `set_threads`).
        let threads = self.threads.clamp(1, shards);
        if threads != self.threads {
            self.threads = threads;
            if let Some(pool) = &mut self.pool {
                pool.resize(threads);
            }
        }
        Ok(())
    }

    /// Multi-core [`ingest`](Self::ingest): carve the batch into
    /// shard-run units, publish them LPT-first in the lock-free claim
    /// queue, and drain them together with the stealer pool (the calling
    /// thread claims units too). Because a shard is processed by exactly
    /// one worker per batch and per-key seeds derive from the key alone,
    /// the per-key samples are **bit-identical for every thread count**
    /// (equal to the serial path's). With `threads == 1` this runs the
    /// shards inline.
    ///
    /// Takes `&self`: queries may run concurrently (they use the shard
    /// read/write locks, after waiting on the epoch watermark).
    /// Concurrent `ingest_parallel` calls from several threads are
    /// applied atomically per shard but in unspecified relative order;
    /// the bit-identical guarantee is for sequentially submitted
    /// batches.
    ///
    /// Batches are double-buffered: this may return while the batch's
    /// in-flight tail is still draining on the stealers (the next call
    /// overlaps its partition/sort with that tail and then waits for the
    /// epoch before publishing). Queries and checkpoints synchronize
    /// implicitly; [`flush`](Self::flush) does so explicitly.
    ///
    /// # Panics
    /// Re-raises per-key sampler panics (e.g. a key's timestamps running
    /// backwards) with the structured [`WorkerPanic`] message naming the
    /// worker and shard — possibly deferred to the *next* call or
    /// [`flush`](Self::flush) under pipelining. Use
    /// [`try_ingest_parallel`](Self::try_ingest_parallel) to handle them
    /// as values instead.
    pub fn ingest_parallel(&self, batch: &[KeyedEvent<K, T>]) {
        if let Err(panic) = self.try_ingest_parallel(batch) {
            panic!("{panic}");
        }
    }

    /// [`ingest_parallel`](Self::ingest_parallel) with per-key sampler
    /// panics surfaced as a structured [`WorkerPanic`] (worker index,
    /// shard index, payload) instead of aborting the caller.
    ///
    /// A sampler panic is a caller contract violation (backwards per-key
    /// clock being the canonical one), but it must not take the fleet
    /// down: the unit catches the unwind while holding the shard's
    /// write guard, so no lock is poisoned — the offending shard keeps
    /// its pre-batch-visible state (the failing sub-batch may be
    /// partially applied; its key-arrival-order prefix is) and **every**
    /// shard remains queryable and ingestible afterwards. Under the
    /// double-buffered pipeline the report is **deferred to the next
    /// synchronization point**: this call returns the panic of the
    /// *previous* outstanding batch, if any; end-of-stream callers
    /// should finish with [`flush`](Self::flush) to collect the last
    /// batch's verdict. The first panic in shard order is reported.
    pub fn try_ingest_parallel(&self, batch: &[KeyedEvent<K, T>]) -> Result<(), WorkerPanic> {
        if batch.is_empty() {
            return Ok(());
        }
        assert!(
            batch.len() <= u32::MAX as usize,
            "batch exceeds u32 positions"
        );
        let nshards = self.shards.len();
        let mask = self.shard_mask;
        if self.threads <= 1 || nshards == 1 {
            // Inline serial path. Routes are local (not the engine's
            // scratch) because `&self` must not alias concurrent callers.
            // Sync first: a pending epoch could exist if the pool was
            // just shrunk to 1 thread mid-pipeline.
            self.sync();
            let mut routes: Vec<Route> = (0..nshards).map(|_| Vec::new()).collect();
            for (pos, (key, _, _)) in batch.iter().enumerate() {
                let hash = fx_hash_key(key);
                let s = (((hash >> 32) ^ hash) & mask) as usize;
                routes[s].push((pos as u32, hash));
            }
            let mut first_panic = None;
            for (s, (shard, route)) in self.shards.iter().zip(&routes).enumerate() {
                if !route.is_empty() {
                    if let Err(p) = ingest_guarded(shard, batch, route, 0, s) {
                        first_panic.get_or_insert(p);
                    }
                }
            }
            return first_panic.map_or(Ok(()), Err);
        }
        let pool = self.pool.as_ref().expect("set_threads spawned the pool");
        // Prepare (partition + counting sort + LPT order) runs *before*
        // waiting on the previous epoch — this is the double-buffered
        // overlap: batch N+1's carve proceeds while batch N's tail
        // drains on the stealers.
        let epoch = Epoch::prepare(
            batch,
            nshards,
            self.threads,
            mask,
            &self.shards,
            Arc::clone(&self.exec_flags),
            fx_hash_key,
        )
        .expect("batch checked non-empty");
        pool.submit(epoch)
    }
}

impl<K, T: Clone + 'static> MemoryWords for MultiStreamEngine<K, T> {
    /// Fleet-wide footprint: the sum of every per-key sampler's words.
    /// Registry scaffolding (index tables, key slabs, box pointers) is
    /// outside the paper's §1.4 stream-element model, exactly as RNG
    /// state is excluded for single samplers — see
    /// [`MultiStreamEngine::registry_overhead_words`] for that side.
    fn memory_words(&self) -> usize {
        self.sync();
        self.shards
            .iter()
            .map(|s| {
                let shard = s.read().expect("shard lock poisoned");
                (0..shard.registry.len())
                    .map(|slot| shard.store.memory_words(slot))
                    .sum::<usize>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::values::{ValueGen, ZipfGen};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn seq_wr_spec(n: u64, k: usize, seed: u64) -> SamplerSpec {
        format!("--window seq --n {n} --k {k} --seed {seed}")
            .parse()
            .expect("spec")
    }

    #[test]
    fn fx_hash_is_deterministic_and_spreads() {
        let a = fx_hash_key(&1234u64);
        assert_eq!(a, fx_hash_key(&1234u64));
        assert_ne!(a, fx_hash_key(&1235u64));
        // Spread check: 4096 consecutive keys across 16 shards.
        let mut counts = [0usize; 16];
        for key in 0..4096u64 {
            let h = fx_hash_key(&key);
            counts[(((h >> 32) ^ h) & 15) as usize] += 1;
        }
        for (shard, &c) in counts.iter().enumerate() {
            assert!(
                (128..=384).contains(&c),
                "shard {shard} got {c} of 4096 keys"
            );
        }
    }

    #[test]
    fn lazy_creation_and_per_key_windows() {
        let mut e: MultiStreamEngine<&str, u64> =
            MultiStreamEngine::new(seq_wr_spec(3, 2, 1)).expect("engine");
        assert_eq!(e.num_keys(), 0);
        e.ingest(&[
            ("alice", 0, 1),
            ("bob", 0, 100),
            ("alice", 0, 2),
            ("alice", 0, 3),
            ("alice", 0, 4),
        ]);
        assert_eq!(e.num_keys(), 2);
        assert!(e.contains_key(&"alice") && e.contains_key(&"bob"));
        // Alice's window is her last 3 arrivals — untouched by Bob's.
        for s in e.sample_k(&"alice").expect("nonempty") {
            assert!((2..=4).contains(s.value()), "stale sample {s:?}");
        }
        for s in e.sample_k(&"bob").expect("nonempty") {
            assert_eq!(*s.value(), 100);
        }
        assert!(e.sample_k(&"carol").is_none());
        assert!(e.sample(&"carol").is_none());
        assert_eq!(e.keys().len(), 2);
    }

    #[test]
    fn backend_resolution_and_override() {
        // Paper template: auto resolves to SoA; erased is still available.
        let template = seq_wr_spec(10, 2, 1);
        let auto: MultiStreamEngine<u64, u64> =
            MultiStreamEngine::new(template.clone()).expect("engine");
        assert_eq!(auto.backend(), FleetBackend::Soa);
        let erased: MultiStreamEngine<u64, u64> = MultiStreamEngine::with_backend(
            template.clone(),
            4,
            SamplerSpec::build::<u64>,
            1,
            FleetBackend::Erased,
        )
        .expect("engine");
        assert_eq!(erased.backend(), FleetBackend::Erased);
        let explicit: MultiStreamEngine<u64, u64> = MultiStreamEngine::with_backend(
            template,
            4,
            SamplerSpec::build::<u64>,
            1,
            FleetBackend::Soa,
        )
        .expect("engine");
        assert_eq!(explicit.backend(), FleetBackend::Soa);
    }

    #[test]
    fn sample_k_many_matches_per_key_queries() {
        // Both backends: the batched read must agree element-for-element
        // with sample_k, and misses must come back as None in position.
        for backend in [FleetBackend::Soa, FleetBackend::Erased] {
            let mut e: MultiStreamEngine<u64, u64> = MultiStreamEngine::with_backend(
                seq_wr_spec(8, 3, 5),
                4,
                SamplerSpec::build::<u64>,
                1,
                backend,
            )
            .expect("engine");
            let events: Vec<(u64, u64, u64)> = (0..500u64).map(|i| (i % 23, 0, i)).collect();
            e.ingest(&events);
            let mut keys: Vec<u64> = (0..30u64).collect();
            keys.push(7); // duplicates answer independently
            let many = e.sample_k_many(&keys);
            assert_eq!(many.len(), keys.len());
            for (key, got) in keys.iter().zip(&many) {
                assert_eq!(*got, e.sample_k(key), "key {key} ({backend:?})");
                assert_eq!(got.is_some(), *key < 23, "key {key} ({backend:?})");
            }
        }
    }

    #[test]
    fn soa_and_erased_backends_agree() {
        // The quick in-module check; the exhaustive per-family lockstep
        // suite is tests/soa_fleet_equivalence.rs.
        let template = seq_wr_spec(25, 3, 17);
        let mut a: MultiStreamEngine<u64, u64> = MultiStreamEngine::with_backend(
            template.clone(),
            8,
            SamplerSpec::build::<u64>,
            1,
            FleetBackend::Soa,
        )
        .expect("engine");
        let mut b: MultiStreamEngine<u64, u64> = MultiStreamEngine::with_backend(
            template,
            8,
            SamplerSpec::build::<u64>,
            1,
            FleetBackend::Erased,
        )
        .expect("engine");
        let events: Vec<(u64, u64, u64)> = (0..3_000u64).map(|i| (i % 37, 0, i)).collect();
        for chunk in events.chunks(256) {
            a.ingest(chunk);
            b.ingest(chunk);
        }
        assert_eq!(a.num_keys(), b.num_keys());
        for key in a.keys() {
            assert_eq!(a.sample_k(&key), b.sample_k(&key), "key {key}");
            assert_eq!(
                a.max_key_memory_words(),
                b.max_key_memory_words(),
                "accounting"
            );
        }
    }

    #[test]
    fn explicit_soa_over_baseline_template_errors() {
        // chain has no fleet kernel; auto falls back to erased, but an
        // explicit soa request is refused.
        let chain: SamplerSpec = "--window seq --n 5 --algo chain --k 2"
            .parse()
            .expect("parses");
        let factory = |_: &SamplerSpec| -> Result<Box<dyn ErasedWindowSampler<u64>>, SpecError> {
            // A stand-in factory so the probe passes without the
            // baselines crate (unit tests stay dependency-free).
            Ok(Box::new(swsample_core::seq::SeqSamplerWr::new(
                5,
                2,
                SmallRng::seed_from_u64(1),
            )))
        };
        let auto = MultiStreamEngine::<u64, u64>::with_backend(
            chain.clone(),
            2,
            factory,
            1,
            FleetBackend::Auto,
        )
        .expect("auto falls back");
        assert_eq!(auto.backend(), FleetBackend::Erased);
        let err =
            MultiStreamEngine::<u64, u64>::with_backend(chain, 2, factory, 1, FleetBackend::Soa);
        assert!(matches!(err, Err(SpecError::Invalid(_))));
    }

    #[test]
    fn interleaved_ingest_equals_per_key_ingest() {
        // The grouped batched path must produce exactly the samples a
        // dedicated per-key sampler produces: grouping is a reordering
        // of already-commuting operations, and seeds are derived purely
        // from (template seed, key).
        let template = seq_wr_spec(10, 3, 99);
        let mut e: MultiStreamEngine<u64, u64> =
            MultiStreamEngine::new(template.clone()).expect("engine");
        let keys = [3u64, 17, 290_017];
        let mut batch = Vec::new();
        for round in 0..200u64 {
            for &k in &keys {
                batch.push((k, 0u64, round * 10 + k));
            }
        }
        e.ingest(&batch);

        for &key in &keys {
            let mut spec = template.clone();
            spec.seed = mix_seed(template.seed, fx_hash_key(&key));
            let mut solo = spec.build::<u64>().expect("builds");
            let values: Vec<u64> = (0..200u64).map(|r| r * 10 + key).collect();
            solo.insert_batch(&values);
            assert_eq!(
                e.sample_k(&key),
                solo.sample_k(),
                "key {key}: engine diverges from dedicated sampler"
            );
        }
    }

    #[test]
    fn timestamp_template_expires_per_key() {
        let spec: SamplerSpec = "--window ts --w 5 --mode wor --k 2 --seed 4"
            .parse()
            .expect("spec");
        let mut e: MultiStreamEngine<u8, u64> = MultiStreamEngine::new(spec).expect("engine");
        let mut batch = Vec::new();
        for t in 0..50u64 {
            batch.push((1u8, t, t));
            if t % 3 == 0 {
                batch.push((2u8, t, 1000 + t));
            }
        }
        e.ingest(&batch);
        for s in e.sample_k(&1).expect("nonempty") {
            assert!(s.timestamp() >= 45, "expired sample {s:?}");
        }
        for s in e.sample_k(&2).expect("nonempty") {
            assert!(s.timestamp() >= 45 && *s.value() >= 1000);
        }
    }

    #[test]
    fn distinct_keys_get_distinct_seeds() {
        // `with_sampler` introspection is an erased-backend feature, so
        // pin the backend explicitly.
        let template = seq_wr_spec(100, 4, 7);
        let mut e: MultiStreamEngine<u64, u64> = MultiStreamEngine::with_backend(
            template,
            MultiStreamEngine::<u64, u64>::DEFAULT_SHARDS,
            SamplerSpec::build::<u64>,
            1,
            FleetBackend::Erased,
        )
        .expect("engine");
        let batch: Vec<(u64, u64, u64)> = (0..64u64).map(|k| (k, 0, 1)).collect();
        e.ingest(&batch);
        let mut seeds: Vec<u64> = (0..64u64)
            .map(|k| {
                e.with_sampler(&k, |s| s.spec().expect("built via spec").seed)
                    .expect("present")
            })
            .collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 64, "per-key seed collision");
    }

    #[test]
    fn with_sampler_is_erased_only() {
        let mut e: MultiStreamEngine<u64, u64> =
            MultiStreamEngine::new(seq_wr_spec(10, 2, 3)).expect("engine");
        assert_eq!(e.backend(), FleetBackend::Soa);
        e.ingest(&[(1, 0, 10)]);
        assert!(e.with_sampler(&1, |s| s.k()).is_none(), "SoA: no box");
        assert!(e.sample_k(&1).is_some(), "queries still answer");
    }

    #[test]
    fn rejects_bad_templates_eagerly() {
        // k = 0 is invalid; chain needs the baselines factory.
        let bad: SamplerSpec = "--window seq --n 5 --k 0".parse().expect("parses");
        assert!(MultiStreamEngine::<u64, u64>::new(bad).is_err());
        let chain: SamplerSpec = "--window seq --n 5 --algo chain".parse().expect("parses");
        assert!(MultiStreamEngine::<u64, u64>::new(chain).is_err());
    }

    #[test]
    fn slab_registry_survives_growth_and_collisions() {
        // One shard forces every key through one table; enough keys to
        // trigger several doublings, interleaved with lookups.
        let mut e: MultiStreamEngine<u64, u64> =
            MultiStreamEngine::with_factory(seq_wr_spec(4, 1, 3), 1, SamplerSpec::build::<u64>)
                .expect("engine");
        for round in 0..4u64 {
            let batch: Vec<(u64, u64, u64)> =
                (0..500u64).map(|k| (k, 0, round * 1000 + k)).collect();
            e.ingest(&batch);
            assert_eq!(e.num_keys(), 500, "round {round}");
        }
        for k in (0..500u64).step_by(97) {
            let got = e.sample_k(&k).expect("key present");
            assert!(got.iter().all(|s| *s.value() % 1000 == k));
        }
        // ≥ 2 bucket words + 1 key word per key (SoA carries no per-key
        // box words; the erased backend would add 2 more).
        assert!(e.registry_overhead_words() >= 500 * 3);
    }

    #[test]
    fn parallel_ingest_is_bit_identical_to_serial() {
        let template = seq_wr_spec(50, 4, 11);
        let mut serial: MultiStreamEngine<u64, u64> =
            MultiStreamEngine::with_factory(template.clone(), 8, SamplerSpec::build::<u64>)
                .expect("engine");
        let parallel: MultiStreamEngine<u64, u64> =
            MultiStreamEngine::with_threads(template, 8, SamplerSpec::build::<u64>, 4)
                .expect("engine");
        assert_eq!(parallel.num_threads(), 4);

        let mut rng = SmallRng::seed_from_u64(9);
        let mut zipf = ZipfGen::new(200, 1.2);
        let events: Vec<(u64, u64, u64)> = (0..20_000u64)
            .map(|i| (zipf.next_value(&mut rng), i / 32, i))
            .collect();
        for chunk in events.chunks(777) {
            serial.ingest(chunk);
            parallel.ingest_parallel(chunk);
        }
        assert_eq!(serial.num_keys(), parallel.num_keys());
        for key in serial.keys() {
            assert_eq!(
                serial.sample_k(&key),
                parallel.sample_k(&key),
                "key {key}: parallel diverges from serial"
            );
        }
    }

    #[test]
    fn worker_panic_is_structured_and_nonfatal() {
        // A backwards per-key clock panics inside the sampler (caller
        // contract violation). The pool must name the shard, leave no
        // lock poisoned, and keep every shard queryable and ingestible.
        let spec: SamplerSpec = "--window ts --w 10 --k 2 --seed 1".parse().expect("spec");
        let engine: MultiStreamEngine<u64, u64> =
            MultiStreamEngine::with_threads(spec, 4, SamplerSpec::build::<u64>, 2).expect("engine");
        // Two keys in different shards.
        let shard_of = |key: u64| {
            let h = fx_hash_key(&key);
            (((h >> 32) ^ h) & engine.shard_mask) as usize
        };
        let a = 0u64;
        let b = (1..100u64)
            .find(|&k| shard_of(k) != shard_of(a))
            .expect("some key lands elsewhere");
        engine
            .try_ingest_parallel(&[(a, 10, 1), (b, 10, 2)])
            .expect("forward clock is fine");
        engine.flush().expect("clean epoch");
        // Under the double-buffered pipeline the report is deferred to
        // the next synchronization point — here, an explicit flush.
        engine
            .try_ingest_parallel(&[(a, 5, 3), (b, 11, 4)])
            .expect("own-batch panics surface at the next sync point");
        let err = engine.flush().expect_err("key a's clock ran backwards");
        assert_eq!(err.shard, shard_of(a), "panic names the wrong shard");
        assert!(
            err.message.contains("backwards"),
            "payload lost: {:?}",
            err.message
        );
        assert!(err.worker < 2);
        // Both shards — including the panicked one — still answer.
        assert!(engine.sample_k(&a).is_some(), "panicked shard unreadable");
        assert!(engine.sample_k(&b).is_some(), "innocent shard unreadable");
        // And future (contract-respecting) ingestion still works.
        engine
            .try_ingest_parallel(&[(a, 12, 5), (b, 12, 6)])
            .expect("fleet recovered");
        engine.flush().expect("recovered epoch is clean");
        // The deferred report also arrives through the *next* ingest
        // call, and the panicking wrapper re-raises it structured.
        engine.ingest_parallel(&[(a, 3, 7)]); // backwards again; deferred
        let msg = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.ingest_parallel(&[(b, 13, 8)])
        }))
        .expect_err("must re-raise at the next call");
        let msg = msg.downcast_ref::<String>().expect("string payload");
        assert!(
            msg.contains(&format!("shard {}", shard_of(a))),
            "unstructured message: {msg}"
        );
        engine.flush().expect("nothing further pending");
    }

    #[test]
    fn save_restore_round_trips_across_backends_and_scales() {
        // Checkpoint at the halfway point, restore into (a) the same
        // backend, (b) the other backend, (c) a different shard count —
        // then finish the stream everywhere and require bit-identical
        // samples against the uninterrupted run.
        let template = seq_wr_spec(40, 3, 23);
        let events: Vec<(u64, u64, u64)> = (0..6_000u64).map(|i| (i % 101, 0, i)).collect();
        let (first, second) = events.split_at(events.len() / 2);

        let build = |backend, shards| -> MultiStreamEngine<u64, u64> {
            MultiStreamEngine::with_backend(
                template.clone(),
                shards,
                SamplerSpec::build::<u64>,
                1,
                backend,
            )
            .expect("engine")
        };
        let mut uninterrupted = build(FleetBackend::Soa, 8);
        uninterrupted.ingest(&events);

        let mut half = build(FleetBackend::Soa, 8);
        half.ingest(first);
        let checkpoint = half.save_states().expect("seq-wr checkpoints");
        assert_eq!(checkpoint.len(), half.num_keys());

        for (backend, shards) in [
            (FleetBackend::Soa, 8),
            (FleetBackend::Erased, 8),
            (FleetBackend::Soa, 2),
            (FleetBackend::Erased, 32),
        ] {
            let mut resumed = build(backend, shards);
            resumed
                .restore_states(checkpoint.clone())
                .expect("restore onto same template");
            resumed.ingest(second);
            assert_eq!(resumed.num_keys(), uninterrupted.num_keys());
            for key in uninterrupted.keys() {
                assert_eq!(
                    resumed.sample_k(&key),
                    uninterrupted.sample_k(&key),
                    "key {key} on {backend:?}/{shards} shards diverged after restore"
                );
            }
        }
    }

    #[test]
    fn live_rescale_preserves_every_sample() {
        let template = seq_wr_spec(30, 4, 5);
        let events: Vec<(u64, u64, u64)> = (0..4_000u64).map(|i| (i % 53, 0, i)).collect();
        let (first, second) = events.split_at(events.len() / 2);

        let mut steady: MultiStreamEngine<u64, u64> =
            MultiStreamEngine::new(template.clone()).expect("engine");
        steady.ingest(&events);

        let mut rescaled: MultiStreamEngine<u64, u64> =
            MultiStreamEngine::with_threads(template, 16, SamplerSpec::build::<u64>, 4)
                .expect("engine");
        rescaled.ingest(first);
        rescaled.set_shards(2).expect("shrink mid-stream");
        assert_eq!(rescaled.num_shards(), 2);
        assert_eq!(rescaled.num_threads(), 2, "threads re-clamped to shards");
        rescaled.ingest_parallel(second);
        assert_eq!(steady.num_keys(), rescaled.num_keys());
        for key in steady.keys() {
            assert_eq!(
                steady.sample_k(&key),
                rescaled.sample_k(&key),
                "key {key} diverged across rescale"
            );
        }
        // Growing again is equally invisible.
        rescaled.set_shards(64).expect("grow");
        for key in steady.keys() {
            assert_eq!(steady.sample_k(&key), rescaled.sample_k(&key));
        }
    }

    #[test]
    fn restore_rejects_mismatched_family() {
        let mut wr: MultiStreamEngine<u64, u64> =
            MultiStreamEngine::new(seq_wr_spec(10, 2, 1)).expect("engine");
        wr.ingest(&[(1, 0, 10), (2, 0, 20)]);
        let states = wr.save_states().expect("checkpoints");
        let wor: SamplerSpec = "--window seq --n 10 --mode wor --k 2 --seed 1"
            .parse()
            .expect("spec");
        let mut wor: MultiStreamEngine<u64, u64> = MultiStreamEngine::new(wor).expect("engine");
        let err = wor.restore_states(states).expect_err("family mismatch");
        assert!(matches!(
            err,
            swsample_core::state::StateError::Mismatch { .. }
        ));
    }

    /// The acceptance-criterion test: a 100k-key zipf-skewed stream
    /// through the batched keyed path, with every per-key footprint under
    /// the Theorem 2.1 cap and fleet memory under `keys · cap`.
    #[test]
    fn hundred_thousand_keys_within_paper_caps() {
        let (keys, k, n) = (100_000u64, 16usize, 1_000u64);
        let seq_wr_cap = 7 * k + 3; // Theorem 2.1 ceiling (see tests/theorem_bounds.rs)
        let mut e: MultiStreamEngine<u64, u64> =
            MultiStreamEngine::with_factory(seq_wr_spec(n, k, 42), 64, SamplerSpec::build::<u64>)
                .expect("engine");

        let mut rng = SmallRng::seed_from_u64(7);
        let mut zipf = ZipfGen::new(keys, 1.05);
        let mut batch: Vec<(u64, u64, u64)> = Vec::with_capacity(1024);
        let total = 400_000u64;
        for i in 0..total {
            batch.push((zipf.next_value(&mut rng), i / 64, i));
            if batch.len() == 1024 {
                e.ingest(&batch);
                batch.clear();
            }
        }
        e.ingest(&batch);

        assert!(
            e.num_keys() > 40_000,
            "zipf(1.05) over 100k keys, 400k draws: expected ~48k distinct keys, got {}",
            e.num_keys()
        );
        assert!(
            e.max_key_memory_words() <= seq_wr_cap,
            "hottest key {} words > deterministic cap {seq_wr_cap}",
            e.max_key_memory_words()
        );
        assert!(
            e.memory_words() <= e.num_keys() * seq_wr_cap,
            "fleet {} words > {} keys x {seq_wr_cap}",
            e.memory_words(),
            e.num_keys()
        );
        // And the fleet still answers per-key queries.
        let hot = e.sample_k(&0).expect("hottest key nonempty");
        assert_eq!(hot.len(), k);
    }
}
