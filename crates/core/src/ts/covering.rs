//! The covering decomposition `ζ(a, b)` (Definition 3.1) and its `Incr`
//! operator (Lemma 3.4).
//!
//! `ζ(a, b)` is an ordered list of bucket structures covering the index
//! range `[a, b]`, defined inductively:
//!
//! ```text
//! ζ(b, b)  = ⟨BS(b, b+1)⟩
//! ζ(a, b)  = ⟨BS(a, c), ζ(c, b)⟩,   c = a + 2^{⌊log(b+1−a)⌋ − 1}
//! ```
//!
//! so bucket widths decay geometrically and `|ζ(a, b)| = O(log(b − a))`
//! (Fact 3.2). `Incr` appends element `b+1` while restoring canonical form
//! by merging equal-width prefixes; Lemma 3.4 proves `Incr(ζ(a,b)) =
//! ζ(a, b+1)`, which the property tests verify directly against the
//! inductive definition.

use super::bucket::BucketStruct;
use crate::memory::MemoryWords;
use crate::rngutil::{floor_log2, BitSource};
use crate::sample::Sample;
use rand::Rng;

/// A canonical covering decomposition over a contiguous index range.
#[derive(Debug, Clone)]
pub(crate) struct Covering<T, S = ()> {
    buckets: Vec<BucketStruct<T, S>>,
}

impl<T: Clone> Covering<T, ()> {
    /// `ζ(b, b)`: a single width-1 bucket holding `item`.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn new(item: Sample<T>) -> Self {
        Self {
            buckets: vec![BucketStruct::singleton(item)],
        }
    }
}

impl<T: Clone, S: Clone> Covering<T, S> {
    /// `ζ(b, b)` carrying a tracker statistic for the single element.
    pub fn new_with_stat(item: Sample<T>, stat: S) -> Self {
        Self {
            buckets: vec![BucketStruct::singleton_with_stat(item, stat)],
        }
    }

    /// First covered index.
    pub fn start(&self) -> u64 {
        self.buckets[0].a
    }

    /// One past the last covered index.
    pub fn end(&self) -> u64 {
        self.buckets.last().expect("covering is never empty").b
    }

    /// Number of covered elements.
    pub fn covered_len(&self) -> u64 {
        self.end() - self.start()
    }

    /// Number of buckets (`O(log covered_len)` by Fact 3.2).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// The buckets, oldest first.
    pub fn buckets(&self) -> &[BucketStruct<T, S>] {
        &self.buckets
    }

    /// Rebuild a covering from raw buckets (the fused bank extracting one
    /// lane as a standalone engine). The caller must supply a canonical
    /// list.
    pub fn from_buckets(buckets: Vec<BucketStruct<T, S>>) -> Self {
        let c = Self { buckets };
        debug_assert!(c.is_canonical(), "from_buckets: non-canonical list");
        c
    }

    /// Timestamp of the newest covered element (= `ts_first` of the final
    /// width-1 bucket).
    pub fn newest_ts(&self) -> u64 {
        let last = self.buckets.last().expect("covering is never empty");
        debug_assert_eq!(
            last.width(),
            1,
            "canonical covering must end in a width-1 bucket"
        );
        last.ts_first
    }

    /// Timestamp of the oldest covered element.
    pub fn oldest_ts(&self) -> u64 {
        self.buckets[0].ts_first
    }

    /// `Incr` (Lemma 3.4): append the next element (its index must equal
    /// [`Covering::end`]) and restore canonical form.
    ///
    /// Walks the list front-to-back exactly as the paper's recursion: at
    /// each suffix `ζ(a, b)`, if `⌊log(b+2−a)⌋ = ⌊log(b+1−a)⌋` the head
    /// bucket is kept; otherwise the first two buckets (which the proof
    /// shows have equal width) merge. The recursion bottoms out at the
    /// final width-1 bucket, where the new element is appended.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn incr<R: Rng>(&mut self, item: Sample<T>, rng: &mut R, bits: &mut BitSource)
    where
        S: Default,
    {
        self.incr_with_stat(item, S::default(), rng, bits);
    }

    /// [`Covering::incr`] carrying the tracker statistic of the appended
    /// element.
    pub fn incr_with_stat<R: Rng>(
        &mut self,
        item: Sample<T>,
        stat: S,
        rng: &mut R,
        bits: &mut BitSource,
    ) {
        debug_assert_eq!(item.index(), self.end(), "Incr: non-consecutive index");
        debug_assert!(
            item.timestamp() >= self.newest_ts(),
            "Incr: timestamps must be non-decreasing"
        );
        let end = self.end(); // b + 1
        let mut i = 0;
        loop {
            if i == self.buckets.len() - 1 {
                // Base case ζ(b, b): append BS(b+1, b+2).
                self.buckets
                    .push(BucketStruct::singleton_with_stat(item, stat));
                break;
            }
            let a = self.buckets[i].a;
            let len_old = end - a; // b + 1 − a
            if floor_log2(len_old + 1) == floor_log2(len_old) {
                i += 1;
            } else {
                // ⌊log⌋ jumped: b+1−a = 2^j − 1 and the first two buckets
                // have equal width; unify them.
                let right = self.buckets.remove(i + 1);
                self.buckets[i].merge_right(right, rng, bits);
                i += 1;
            }
        }
        debug_assert!(self.is_canonical(), "Incr broke canonical form");
    }

    /// Split for the Lemma 3.5 case-2 transition: find the unique bucket
    /// whose first element is expired while the *next* bucket's first
    /// element is active, given `active(ts)` decides activity. Returns the
    /// straddling bucket (the new `BS(y, z)`) and replaces `self` with the
    /// remaining suffix `ζ(z, ·)`.
    ///
    /// # Panics
    /// Debug-panics unless the first bucket is expired and the newest
    /// element is active (the case-2 precondition).
    pub fn split_straddle(&mut self, active: impl Fn(u64) -> bool) -> BucketStruct<T, S> {
        debug_assert!(
            !active(self.buckets[0].ts_first),
            "split: first bucket still active"
        );
        debug_assert!(active(self.newest_ts()), "split: newest element expired");
        let j = self
            .buckets
            .iter()
            .position(|b| active(b.ts_first))
            .expect("newest element is active, so an active bucket exists");
        debug_assert!(j >= 1);
        let mut tail = self.buckets.split_off(j);
        std::mem::swap(&mut self.buckets, &mut tail);
        // `tail` now holds the dropped prefix; its last bucket straddles.
        tail.pop().expect("prefix is non-empty")
    }

    /// Uniform sample of the covered range: pick a bucket with probability
    /// proportional to its width, output its `R` sample.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn sample_uniform<R: Rng>(&self, rng: &mut R) -> Sample<T> {
        self.sample_uniform_with_stat(rng).0
    }

    /// Uniform sample of the covered range together with its tracker
    /// statistic.
    pub fn sample_uniform_with_stat<R: Rng>(&self, rng: &mut R) -> (Sample<T>, S) {
        let total = self.covered_len();
        let mut x = rng.gen_range(0..total);
        for b in &self.buckets {
            if x < b.width() {
                return (b.r.clone(), b.r_stat.clone());
            }
            x -= b.width();
        }
        unreachable!("widths sum to covered_len")
    }

    /// Apply `observe` to every bucket's `R` statistic (called once per
    /// arriving element by tracked engines — `O(log n)` tracker updates).
    pub fn observe_all(&mut self, mut observe: impl FnMut(&mut S)) {
        for b in &mut self.buckets {
            observe(&mut b.r_stat);
        }
    }

    /// Structural invariant: contiguous buckets matching Definition 3.1
    /// (each head width is `2^{⌊log L⌋−1}` for suffix length `L`, final
    /// bucket width 1).
    pub fn is_canonical(&self) -> bool {
        let end = self.end();
        let mut expect_a = self.start();
        for (i, b) in self.buckets.iter().enumerate() {
            if b.a != expect_a || b.b <= b.a {
                return false;
            }
            let suffix_len = end - b.a; // covered elements from this bucket on
            let want = if i == self.buckets.len() - 1 {
                1
            } else {
                1u64 << (floor_log2(suffix_len) - 1)
            };
            if b.width() != want {
                return false;
            }
            expect_a = b.b;
        }
        expect_a == end
    }
}

impl<T, S> MemoryWords for Covering<T, S> {
    fn memory_words(&self) -> usize {
        self.buckets.iter().map(MemoryWords::memory_words).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use swsample_stats::chi_square_uniform_test;

    fn item(i: u64) -> Sample<u64> {
        Sample::new(i, i, i)
    }

    fn build(len: u64, rng: &mut SmallRng) -> Covering<u64> {
        let mut bits = BitSource::new();
        let mut c = Covering::new(item(0));
        for i in 1..len {
            c.incr(item(i), rng, &mut bits);
        }
        c
    }

    #[test]
    fn widths_match_inductive_definition() {
        // Reference widths computed straight from Definition 3.1.
        fn reference_widths(mut len: u64) -> Vec<u64> {
            let mut out = Vec::new();
            while len > 1 {
                let w = 1u64 << (crate::rngutil::floor_log2(len) - 1);
                out.push(w);
                len -= w;
            }
            out.push(1);
            out
        }
        let mut rng = SmallRng::seed_from_u64(1);
        for len in 1..=300u64 {
            let c = build(len, &mut rng);
            let got: Vec<u64> = c.buckets().iter().map(|b| b.width()).collect();
            assert_eq!(got, reference_widths(len), "len = {len}");
            assert!(c.is_canonical());
        }
    }

    #[test]
    fn bucket_count_is_logarithmic() {
        let mut rng = SmallRng::seed_from_u64(2);
        for &len in &[1u64, 2, 15, 16, 17, 255, 256, 1023, 4096, 10_000] {
            let c = build(len, &mut rng);
            let bound = 2 * (crate::rngutil::floor_log2(len) as usize + 1) + 1;
            assert!(
                c.bucket_count() <= bound,
                "len={len}: {} buckets > bound {bound}",
                c.bucket_count()
            );
        }
    }

    #[test]
    fn covered_range_is_contiguous() {
        let mut rng = SmallRng::seed_from_u64(3);
        let c = build(100, &mut rng);
        assert_eq!(c.start(), 0);
        assert_eq!(c.end(), 100);
        assert_eq!(c.covered_len(), 100);
    }

    #[test]
    fn sample_uniform_over_covered_range() {
        let len = 24u64;
        let trials = 30_000u64;
        let mut counts = vec![0u64; len as usize];
        for t in 0..trials {
            let mut rng = SmallRng::seed_from_u64(10_000 + t);
            let c = build(len, &mut rng);
            counts[c.sample_uniform(&mut rng).index() as usize] += 1;
        }
        let out = chi_square_uniform_test(&counts);
        assert!(
            out.p_value > 1e-4,
            "covering sample not uniform: p = {}",
            out.p_value
        );
    }

    #[test]
    fn split_straddle_returns_boundary_bucket() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut c = build(64, &mut rng);
        // Expire timestamps < 10: active(ts) = ts >= 10.
        let head = c.split_straddle(|ts| ts >= 10);
        // The straddling bucket begins expired and its successor is active.
        assert!(head.ts_first < 10);
        assert!(c.oldest_ts() >= 10);
        assert_eq!(
            head.b,
            c.start(),
            "head must be adjacent to the remaining suffix"
        );
        // Case-2 invariant |B1| <= |B2| (the proof of Lemma 3.5 case 2(c)).
        assert!(head.width() <= c.covered_len());
    }

    #[test]
    fn split_invariant_holds_for_every_boundary() {
        for boundary in 1..64u64 {
            let mut rng = SmallRng::seed_from_u64(500 + boundary);
            let mut c = build(64, &mut rng);
            let head = c.split_straddle(|ts| ts >= boundary);
            assert!(
                head.width() <= c.covered_len(),
                "boundary {boundary}: head width {} > tail len {}",
                head.width(),
                c.covered_len()
            );
        }
    }

    #[test]
    fn newest_ts_tracks_last_item() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut bits = BitSource::new();
        let mut c = Covering::new(item(0));
        for i in 1..50 {
            c.incr(Sample::new(i, i, i * 3), &mut rng, &mut bits);
            assert_eq!(c.newest_ts(), i * 3);
        }
    }

    #[test]
    fn memory_words_scale_with_bucket_count() {
        let mut rng = SmallRng::seed_from_u64(6);
        let c = build(1000, &mut rng);
        assert_eq!(c.memory_words(), c.bucket_count() * 9);
    }
}
