//! Gemulla–Lehner top-k priority sampling (SIGMOD'08) — sampling *without
//! replacement* from timestamp-based windows.
//!
//! Natural extension of BDM priority sampling: every element draws a
//! priority and the sample is the `k` highest-priority active elements.
//! An element must be stored as long as fewer than `k` later elements
//! out-prioritize it (it could still enter the top-k once they expire).
//! Expected memory is `O(k log n)` — but, as with all priority-based
//! methods, only in expectation; the paper's Theorem 4.4 achieves the
//! same bound deterministically.
//!
//! # Ingestion cost
//!
//! The textbook formulation updates a dominance counter on *every* stored
//! element per arrival — `O(stored)` per element, which is why the naive
//! implementation benchmarked *slower* than full `k`-draw priority
//! sampling despite drawing one priority per element. This
//! implementation makes every arrival branch-and-done — one RNG word,
//! one push — via **lazy dominance eviction**: instead of per-arrival
//! counting, the stored deque is compacted when it doubles: one backward
//! scan with a size-`k` min-heap retains exactly the Gemulla–Lehner
//! stored set (elements dominated by fewer than `k` later higher
//! priorities). The scan is exact because an element in the top-`k` of
//! the suffix after `e` can never have been evicted earlier (it would
//! need `k` higher-priority successors, which would displace it from
//! that top-`k` — contradiction), so the running heap always sees the
//! true suffix top-`k`. Amortized `O(log k)` per element; memory stays
//! within 2× of the eager stored set.
//!
//! This subsumes a threshold early-reject (compare the arrival against
//! the current k-th highest active priority before touching any heap):
//! even the rejected case must still *store* the arrival — every active
//! element currently beating it arrived earlier, so expires no later,
//! and the new element may enter the top-`k` once they do — so the
//! cheapest correct arrival path is the unconditional append itself, and
//! a threshold would gate nothing.
//!
//! Queries are unchanged and exact: the top-`k` by priority of the
//! stored actives equals the top-`k` of all actives, because an element
//! dominated by `k` newer (hence longer-lived) higher-priority elements
//! is never among the active top-`k`.

use rand::Rng;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use swsample_core::state::{self, SamplerState, StateError};
use swsample_core::{MemoryWords, Sample, WindowSampler};

/// Stored element: sample and priority. Dominance is resolved lazily at
/// compaction time, so no per-entry counter is kept.
#[derive(Debug, Clone)]
struct Entry<T> {
    sample: Sample<T>,
    priority: u64,
}

/// Gemulla–Lehner without-replacement priority sampler over a timestamp
/// window of width `t0`.
#[derive(Debug, Clone)]
pub struct PriorityTopK<T, R> {
    t0: u64,
    k: usize,
    now: u64,
    next_index: u64,
    rng: R,
    /// Arrival order; a (lazily compacted) superset of the GL stored set.
    entries: VecDeque<Entry<T>>,
    /// Compaction trigger: when `entries` reaches this length, run the
    /// backward-scan eviction and reset to `2 × stored` (min `4k`).
    watermark: usize,
}

impl<T: Clone, R: Rng> PriorityTopK<T, R> {
    /// Sampler over windows of width `t0 ≥ 1` keeping the top `k ≥ 1`
    /// priorities.
    pub fn new(t0: u64, k: usize, rng: R) -> Self {
        assert!(t0 >= 1 && k >= 1);
        Self {
            t0,
            k,
            now: 0,
            next_index: 0,
            rng,
            entries: VecDeque::new(),
            watermark: (4 * k).max(16),
        }
    }

    /// Number of stored elements (the randomized quantity; includes
    /// entries awaiting lazy eviction, at most 2× the eager stored set).
    pub fn stored(&self) -> usize {
        self.entries.len()
    }

    fn expire(&mut self, now: u64) {
        while self
            .entries
            .front()
            .is_some_and(|e| now - e.sample.timestamp() >= self.t0)
        {
            self.entries.pop_front();
        }
    }

    /// Backward-scan compaction: retain exactly the elements dominated by
    /// fewer than `k` later stored higher priorities (the GL stored set).
    fn compact(&mut self) {
        let k = self.k;
        let mut suffix_top: BinaryHeap<Reverse<u64>> = BinaryHeap::with_capacity(k + 1);
        let mut kept_rev: Vec<Entry<T>> = Vec::with_capacity(self.entries.len() / 2 + k);
        while let Some(e) = self.entries.pop_back() {
            let retain =
                suffix_top.len() < k || e.priority >= suffix_top.peek().expect("nonempty heap").0;
            if retain {
                suffix_top.push(Reverse(e.priority));
                if suffix_top.len() > k {
                    suffix_top.pop();
                }
                kept_rev.push(e);
            }
        }
        self.entries.extend(kept_rev.into_iter().rev());
        self.watermark = (2 * self.entries.len()).max(4 * k).max(16);
    }
}

impl<T, R> MemoryWords for PriorityTopK<T, R> {
    fn memory_words(&self) -> usize {
        // value + index + ts + priority per entry, plus the scalars.
        self.entries.len() * 4 + 5
    }
}

impl<T: Clone, R: Rng + 'static> WindowSampler<T> for PriorityTopK<T, R> {
    fn advance_time(&mut self, now: u64) {
        assert!(now >= self.now, "PriorityTopK: clock moved backwards");
        self.now = now;
        self.expire(now);
    }

    fn insert(&mut self, value: T) {
        let idx = self.next_index;
        self.next_index += 1;
        let priority: u64 = self.rng.gen();
        self.entries.push_back(Entry {
            sample: Sample::new(value, idx, self.now),
            priority,
        });
        if self.entries.len() >= self.watermark {
            self.compact();
        }
    }

    fn sample(&mut self) -> Option<Sample<T>> {
        self.entries
            .iter()
            .max_by_key(|e| e.priority)
            .map(|e| e.sample.clone())
    }

    fn sample_k(&mut self) -> Option<Vec<Sample<T>>> {
        if self.entries.is_empty() {
            return None;
        }
        let mut sorted: Vec<&Entry<T>> = self.entries.iter().collect();
        sorted.sort_by_key(|e| Reverse(e.priority));
        Some(
            sorted
                .into_iter()
                .take(self.k)
                .map(|e| e.sample.clone())
                .collect(),
        )
    }

    fn k(&self) -> usize {
        self.k
    }

    fn save_state(&self) -> Option<SamplerState<T>> {
        Some(SamplerState::PriorityTopK {
            now: self.now,
            next_index: self.next_index,
            rng: state::capture_rng(&self.rng)?,
            entries: self
                .entries
                .iter()
                .map(|e| (e.sample.clone(), e.priority))
                .collect(),
            watermark: self.watermark as u64,
        })
    }

    fn restore_state(&mut self, state: SamplerState<T>) -> Result<(), StateError> {
        let (now, next_index, rng, entries, watermark) = match state {
            SamplerState::PriorityTopK {
                now,
                next_index,
                rng,
                entries,
                watermark,
            } => (now, next_index, rng, entries, watermark),
            other => {
                return Err(StateError::Mismatch {
                    expected: "priority-topk",
                    found: other.family(),
                })
            }
        };
        let watermark = usize::try_from(watermark)
            .map_err(|_| StateError::Corrupt("priority-topk watermark overflows usize".into()))?;
        if !state::restore_rng(&mut self.rng, &rng) {
            return Err(StateError::Unsupported);
        }
        self.entries = entries
            .into_iter()
            .map(|(sample, priority)| Entry { sample, priority })
            .collect();
        self.watermark = watermark.max(4 * self.k).max(16);
        self.now = now;
        self.next_index = next_index;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use swsample_stats::chi_square_uniform_test;

    fn drive(t0: u64, k: usize, ticks: u64, seed: u64) -> Option<Vec<Sample<u64>>> {
        let mut s = PriorityTopK::new(t0, k, SmallRng::seed_from_u64(seed));
        for tick in 0..ticks {
            s.advance_time(tick);
            s.insert(tick);
        }
        s.sample_k()
    }

    #[test]
    fn empty_returns_none() {
        let mut s: PriorityTopK<u64, _> = PriorityTopK::new(5, 2, SmallRng::seed_from_u64(0));
        assert!(s.sample_k().is_none());
    }

    #[test]
    fn k_distinct_active_samples() {
        for seed in 0..50 {
            let out = drive(12, 4, 40, seed).expect("nonempty");
            assert_eq!(out.len(), 4);
            let mut idx: Vec<u64> = out.iter().map(|s| s.index()).collect();
            idx.sort_unstable();
            for w in idx.windows(2) {
                assert_ne!(w[0], w[1]);
            }
            for &i in &idx {
                assert!(i >= 28, "expired sample {i}");
            }
        }
    }

    #[test]
    fn marginal_inclusion_uniform() {
        let (t0, k, ticks) = (8u64, 2usize, 24u64);
        let trials = 25_000u64;
        let mut counts = vec![0u64; t0 as usize];
        for t in 0..trials {
            for s in drive(t0, k, ticks, 40_000 + t).expect("nonempty") {
                counts[(s.index() - (ticks - t0)) as usize] += 1;
            }
        }
        let out = chi_square_uniform_test(&counts);
        assert!(
            out.p_value > 1e-4,
            "GL top-k marginals: p = {}",
            out.p_value
        );
    }

    /// The lazy-eviction path must agree exactly with an eager
    /// reference: same priorities => same top-k, at every query point.
    #[test]
    fn lazy_eviction_matches_eager_reference() {
        let (t0, k) = (64u64, 3usize);
        let mut s = PriorityTopK::new(t0, k, SmallRng::seed_from_u64(8));
        // Eager reference: all active elements with their priorities,
        // replaying the same RNG stream.
        let mut rng = SmallRng::seed_from_u64(8);
        let mut active: Vec<(u64, u64)> = Vec::new(); // (index, priority)
        for tick in 0..2_000u64 {
            s.advance_time(tick);
            s.insert(tick);
            let p: u64 = rng.gen();
            active.push((tick, p));
            active.retain(|&(i, _)| tick - i < t0);
            let mut want: Vec<(u64, u64)> = active.clone();
            want.sort_by_key(|&(_, p)| Reverse(p));
            want.truncate(k);
            let got: Vec<u64> = s
                .sample_k()
                .expect("nonempty")
                .iter()
                .map(|x| x.index())
                .collect();
            let want_idx: Vec<u64> = want.iter().map(|&(i, _)| i).collect();
            assert_eq!(got, want_idx, "tick {tick}: lazy ≠ eager top-k");
        }
    }

    #[test]
    fn stored_is_randomized_but_not_tiny() {
        let mut s = PriorityTopK::new(512, 3, SmallRng::seed_from_u64(5));
        let mut max_stored = 0;
        for tick in 0..10_000u64 {
            s.advance_time(tick);
            s.insert(tick);
            max_stored = max_stored.max(s.stored());
        }
        assert!(max_stored >= 10, "stored stayed at {max_stored}");
    }

    /// Lazy eviction must not let memory grow past ~2× the eager stored
    /// set: over a long steady stream the deque stays `O(k log n)`-ish,
    /// nowhere near the window size.
    #[test]
    fn lazy_eviction_keeps_memory_logarithmic() {
        let (t0, k) = (4_096u64, 4usize);
        let mut s = PriorityTopK::new(t0, k, SmallRng::seed_from_u64(6));
        let mut max_stored = 0;
        for tick in 0..50_000u64 {
            s.advance_time(tick);
            s.insert(tick);
            max_stored = max_stored.max(s.stored());
        }
        // Eager expectation ≈ k·H(n) ≈ 4·8.9 ≈ 36; watermark doubles it
        // and adds slack. 4·k·ln(n) ≈ 133 is a generous w.h.p. ceiling.
        let cap = (4.0 * k as f64 * (t0 as f64).ln()) as usize;
        assert!(
            max_stored <= cap,
            "stored peaked at {max_stored} > {cap} — lazy eviction not bounding memory"
        );
    }

    #[test]
    fn fewer_than_k_active_returns_all() {
        let out = drive(3, 10, 30, 1).expect("nonempty");
        assert_eq!(out.len(), 3);
    }
}
