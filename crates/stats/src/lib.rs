//! Statistical testing substrate for the `swsample` workspace.
//!
//! The sampling algorithms in `swsample-core` make distributional claims
//! (uniformity with and without replacement); verifying those claims needs a
//! small but real statistics toolkit. This crate implements it from scratch
//! so the workspace has no heavyweight runtime dependencies:
//!
//! * [`gamma`] — log-gamma and the regularized incomplete gamma functions,
//!   the numerical backbone of the chi-square distribution.
//! * [`chisq`] — Pearson chi-square goodness-of-fit tests.
//! * [`ks`] — one-sample Kolmogorov–Smirnov test against the uniform CDF.
//! * [`binom`] — exact and normal-approximated binomial tail probabilities.
//! * [`moments`] — Welford online mean/variance, and summary statistics.
//! * [`histogram`] — fixed-bin counting helpers used by the experiments.
//!
//! Everything is `f64`-based, deterministic, and tested against reference
//! values (from standard tables / SciPy) embedded in the unit tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binom;
pub mod chisq;
pub mod gamma;
pub mod histogram;
pub mod ks;
pub mod moments;

pub use binom::{binomial_pmf, binomial_tail_ge, binomial_tail_le};
pub use chisq::{
    chi_square_pvalue, chi_square_statistic, chi_square_test, chi_square_uniform_test,
    ChiSquareOutcome,
};
pub use gamma::{ln_gamma, reg_gamma_lower, reg_gamma_upper};
pub use histogram::Histogram;
pub use ks::{ks_statistic_uniform, ks_test_uniform};
pub use moments::{OnlineMoments, Summary};
