//! Stress and edge-case suite: degenerate window sizes, huge clock values,
//! long streams, giant bursts, and interleaving patterns that the unit
//! tests don't reach.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use swsample::core::seq::{SeqSamplerWor, SeqSamplerWr};
use swsample::core::ts::{TsSamplerWor, TsSamplerWr};
use swsample::core::{MemoryWords, WindowSampler};
use swsample::counting::WindowCounter;

#[test]
fn window_of_one_always_returns_newest() {
    let mut s = SeqSamplerWr::new(1, 3, SmallRng::seed_from_u64(1));
    for i in 0..200u64 {
        s.insert(i);
        for smp in s.sample_k().expect("nonempty") {
            assert_eq!(smp.index(), i, "n=1 must sample the newest element");
        }
    }
    let mut w = SeqSamplerWor::new(1, 3, SmallRng::seed_from_u64(2));
    for i in 0..50u64 {
        w.insert(i);
        let out = w.sample_k().expect("nonempty");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].index(), i);
    }
}

#[test]
fn ts_window_of_one_tick() {
    let mut s = TsSamplerWr::new(1, 2, SmallRng::seed_from_u64(3));
    for tick in 0..100u64 {
        s.advance_time(tick);
        s.insert(tick * 2);
        s.insert(tick * 2 + 1);
        for smp in s.sample_k().expect("nonempty") {
            assert_eq!(
                smp.timestamp(),
                tick,
                "t0=1: only the current tick is active"
            );
        }
    }
}

#[test]
fn huge_clock_values_do_not_overflow() {
    let base = u64::MAX - 10_000;
    let mut s = TsSamplerWor::new(64, 4, SmallRng::seed_from_u64(4));
    let mut counter = WindowCounter::new(64, 4);
    for off in 0..5_000u64 {
        let now = base + off;
        s.advance_time(now);
        counter.advance_time(now);
        s.insert(off);
        counter.insert();
        if off % 512 == 0 {
            if let Some(out) = s.sample_k() {
                for smp in out {
                    assert!(now - smp.timestamp() < 64);
                }
            }
            assert!(counter.estimate() > 0);
        }
    }
}

#[test]
fn giant_burst_in_single_tick() {
    // 100k elements at one timestamp: memory must stay logarithmic and the
    // sampler functional.
    let mut s = TsSamplerWr::new(8, 1, SmallRng::seed_from_u64(5));
    s.advance_time(0);
    for i in 0..100_000u64 {
        s.insert(i);
    }
    assert!(
        s.memory_words() < 1_000,
        "memory {} for 100k burst",
        s.memory_words()
    );
    let smp = s.sample().expect("nonempty");
    assert!(smp.index() < 100_000);
    // All expire together.
    s.advance_time(100);
    assert!(s.sample().is_none());
}

#[test]
fn long_stream_seq_invariants_hold() {
    let n = 4096u64;
    let mut wr = SeqSamplerWr::new(n, 4, SmallRng::seed_from_u64(6));
    let mut wor = SeqSamplerWor::new(n, 4, SmallRng::seed_from_u64(7));
    for i in 0..300_000u64 {
        wr.insert(i);
        wor.insert(i);
    }
    assert!(wr.memory_words() <= 31); // 7k + 3 at k = 4
    assert!(wor.memory_words() <= 40);
    let lo = 300_000 - n;
    for smp in wr.sample_k().expect("nonempty") {
        assert!(smp.index() >= lo);
    }
    let out = wor.sample_k().expect("nonempty");
    assert_eq!(out.len(), 4);
    for smp in out {
        assert!(smp.index() >= lo);
    }
}

#[test]
fn alternating_feast_and_famine() {
    // Bursts followed by silences longer than the window: the sampler must
    // repeatedly empty and restart without drift.
    let t0 = 10u64;
    let mut s = TsSamplerWor::new(t0, 3, SmallRng::seed_from_u64(8));
    let mut idx = 0u64;
    for epoch in 0..50u64 {
        let base = epoch * 1_000;
        for tick in 0..5 {
            s.advance_time(base + tick);
            for _ in 0..4 {
                s.insert(idx);
                idx += 1;
            }
        }
        let out = s.sample_k().expect("nonempty after burst");
        assert_eq!(out.len(), 3);
        for smp in &out {
            assert!(smp.index() >= epoch * 20, "stale sample across famine");
        }
        // Silence of 990 ticks: everything expires.
        s.advance_time(base + 900);
        assert!(s.sample_k().is_none(), "window must be empty after famine");
    }
}

#[test]
fn queries_between_every_insert_are_safe() {
    // Query-heavy usage: a query after every insert, plus repeated queries
    // with no inserts, must neither panic nor return expired elements.
    let mut s = TsSamplerWr::new(5, 2, SmallRng::seed_from_u64(9));
    let mut rng = SmallRng::seed_from_u64(10);
    let mut idx = 0u64;
    for tick in 0..500u64 {
        s.advance_time(tick);
        for _ in 0..rng.gen_range(0..3u64) {
            s.insert(idx);
            idx += 1;
            let _ = s.sample_k();
            let _ = s.sample();
            let _ = s.sample();
        }
    }
}

#[test]
fn clock_advance_without_inserts_is_cheap_and_correct() {
    let mut s = TsSamplerWr::new(1_000, 1, SmallRng::seed_from_u64(11));
    s.advance_time(0);
    s.insert(42u64);
    // A million empty ticks, advanced in jumps.
    for tick in (0..1_000_000u64).step_by(10_000) {
        s.advance_time(tick);
    }
    assert!(s.sample().is_none(), "element must have expired");
    assert!(s.memory_words() <= 8);
}

#[test]
fn same_timestamp_advance_is_idempotent() {
    let mut s = TsSamplerWor::new(4, 2, SmallRng::seed_from_u64(12));
    s.advance_time(7);
    s.insert(1u64);
    for _ in 0..100 {
        s.advance_time(7);
    }
    let out = s.sample_k().expect("nonempty");
    assert_eq!(out.len(), 1);
    assert_eq!(*out[0].value(), 1);
}

#[test]
fn dgim_counter_over_long_stream_with_spikes() {
    let mut c = WindowCounter::with_epsilon(128, 0.05);
    let mut exact: std::collections::VecDeque<u64> = Default::default();
    let mut rng = SmallRng::seed_from_u64(13);
    for tick in 0..20_000u64 {
        c.advance_time(tick);
        while exact.front().is_some_and(|&ts| tick - ts >= 128) {
            exact.pop_front();
        }
        let burst = if tick % 977 == 0 {
            500
        } else {
            rng.gen_range(0..3u64)
        };
        for _ in 0..burst {
            c.insert();
            exact.push_back(tick);
        }
        let truth = exact.len() as f64;
        let est = c.estimate() as f64;
        assert!(
            (est - truth).abs() <= 0.05 * truth + 1.0,
            "tick {tick}: {est} vs {truth}"
        );
    }
}
