//! The unit of output: a sampled stream element with provenance.

/// A stream element drawn by a sampler, carrying its value together with
/// its arrival index and timestamp.
///
/// The index uniquely identifies the element within the stream (two
/// occurrences of the same *value* are distinct elements), which is what
/// "sampling without replacement" is defined over. For sequence-based
/// windows the timestamp equals the index; for timestamp-based windows it
/// is the arrival tick.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Sample<T> {
    value: T,
    index: u64,
    timestamp: u64,
}

impl<T> Sample<T> {
    /// Construct a sample record.
    pub fn new(value: T, index: u64, timestamp: u64) -> Self {
        Self {
            value,
            index,
            timestamp,
        }
    }

    /// The element's value.
    pub fn value(&self) -> &T {
        &self.value
    }

    /// Consume the sample, returning the value.
    pub fn into_value(self) -> T {
        self.value
    }

    /// Zero-based arrival position in the stream.
    pub fn index(&self) -> u64 {
        self.index
    }

    /// Arrival timestamp (equals [`Sample::index`] for sequence windows).
    pub fn timestamp(&self) -> u64 {
        self.timestamp
    }

    /// Memory footprint in the paper's word model: one word each for the
    /// value, the index, and the timestamp.
    pub const WORDS: usize = 3;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let s = Sample::new("x", 7, 3);
        assert_eq!(*s.value(), "x");
        assert_eq!(s.index(), 7);
        assert_eq!(s.timestamp(), 3);
        assert_eq!(s.into_value(), "x");
    }

    #[test]
    fn equality_is_full_record() {
        assert_eq!(Sample::new(1u64, 2, 3), Sample::new(1u64, 2, 3));
        assert_ne!(Sample::new(1u64, 2, 3), Sample::new(1u64, 9, 3));
    }
}
