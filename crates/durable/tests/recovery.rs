//! Crash-recovery bit-identity. Crashes are simulated with the same
//! file surgery a real crash leaves behind — a torn partial record at
//! the end of the WAL, a corrupted snapshot — and recovery must rebuild
//! a fleet whose continued run is byte-for-byte the uncrashed run, on
//! both backends, at any shard or thread count.

use std::fs;
use std::path::{Path, PathBuf};

use swsample_core::{FleetBackend, Sample, SamplerSpec};
use swsample_durable::{DurableEngine, DurableOptions, ResumeOverrides};
use swsample_stream::MultiStreamEngine;

const KEYS: u64 = 37;
const BATCHES: usize = 30;
const BATCH_LEN: u64 = 13;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("swsample-recovery-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn batch(b: usize) -> Vec<(u64, u64, u64)> {
    (0..BATCH_LEN)
        .map(|i| {
            let e = b as u64 * BATCH_LEN + i;
            (e % KEYS, e / 3, e.wrapping_mul(2654435761))
        })
        .collect()
}

fn fleet_samples(engine: &MultiStreamEngine<u64, u64>) -> Vec<(u64, Option<Vec<Sample<u64>>>)> {
    let mut keys = engine.keys();
    keys.sort_unstable();
    keys.into_iter()
        .map(|k| {
            let s = engine.sample_k(&k);
            (k, s)
        })
        .collect()
}

fn reference_samples(spec: &SamplerSpec) -> Vec<(u64, Option<Vec<Sample<u64>>>)> {
    let mut reference = MultiStreamEngine::<u64, u64>::with_factory(
        spec.clone(),
        4,
        swsample_baselines::spec::build::<u64>,
    )
    .expect("reference engine");
    for b in 0..BATCHES {
        reference.ingest(&batch(b));
    }
    fleet_samples(&reference)
}

fn last_wal_segment(dir: &Path) -> PathBuf {
    let mut segs: Vec<PathBuf> = fs::read_dir(dir)
        .expect("read dir")
        .map(|e| e.expect("entry").path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".seg"))
        })
        .collect();
    segs.sort();
    segs.pop().expect("at least one segment")
}

fn newest_snapshot(dir: &Path) -> PathBuf {
    let mut snaps: Vec<PathBuf> = fs::read_dir(dir)
        .expect("read dir")
        .map(|e| e.expect("entry").path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("snap-") && n.ends_with(".snap"))
        })
        .collect();
    snaps.sort();
    snaps.pop().expect("at least one snapshot")
}

/// The resume loop every harness runs: recover, learn how many batches
/// are already covered from `next_seq`, re-ingest the remainder of the
/// regenerated workload.
fn resume_and_finish(
    dir: &Path,
    overrides: ResumeOverrides,
) -> Vec<(u64, Option<Vec<Sample<u64>>>)> {
    let mut durable =
        DurableEngine::<u64, u64>::open_with(dir, DurableOptions::default(), overrides)
            .expect("recovery");
    let done = durable.next_seq() as usize;
    assert!(done <= BATCHES, "recovered more batches than were written");
    for b in done..BATCHES {
        durable.ingest(&batch(b)).unwrap();
    }
    fleet_samples(durable.engine())
}

/// Crash matrix: (backend, threads at crash time) × (threads at resume
/// time), with a torn partial record appended to the WAL tail.
#[test]
fn torn_tail_crash_recovers_bit_identical_across_backends_and_threads() {
    let spec: SamplerSpec = "--window seq --n 64 --mode wr --algo paper --k 4 --seed 900"
        .parse()
        .expect("spec");
    let expected = reference_samples(&spec);
    for backend in [FleetBackend::Soa, FleetBackend::Erased] {
        for crash_threads in [1usize, 2] {
            for resume_threads in [1usize, 2] {
                let tag = format!("torn-{}-{crash_threads}-{resume_threads}", backend.token());
                let dir = tmp_dir(&tag);
                let mut durable = DurableEngine::<u64, u64>::create(
                    &dir,
                    spec.clone(),
                    4,
                    crash_threads,
                    backend,
                    DurableOptions {
                        snapshot_every: Some(7),
                        ..DurableOptions::default()
                    },
                )
                .expect("create");
                for b in 0..20 {
                    durable.ingest(&batch(b)).unwrap();
                }
                // "Crash": drop without a final snapshot, then tear the
                // log tail the way an interrupted append would.
                drop(durable);
                let seg = last_wal_segment(&dir);
                let mut bytes = fs::read(&seg).expect("read segment");
                bytes.extend_from_slice(&[0x17, 0xFF, 0x00, 0xA5, 0x5A]);
                fs::write(&seg, bytes).expect("tear tail");

                let got = resume_and_finish(
                    &dir,
                    ResumeOverrides {
                        threads: Some(resume_threads),
                        ..ResumeOverrides::default()
                    },
                );
                assert_eq!(got, expected, "case {tag} diverged");
                let _ = fs::remove_dir_all(&dir);
            }
        }
    }
}

/// A crash can also cut the last durable record itself: truncating the
/// final segment mid-record loses that batch, and the resume loop
/// re-ingests it from the regenerated workload.
#[test]
fn truncated_final_record_is_replayed_from_the_workload() {
    let spec: SamplerSpec = "--window ts --w 40 --mode wor --algo paper --k 3 --seed 901"
        .parse()
        .expect("spec");
    let expected = reference_samples(&spec);
    let dir = tmp_dir("trunc");
    let mut durable = DurableEngine::<u64, u64>::create(
        &dir,
        spec,
        4,
        2,
        FleetBackend::Auto,
        DurableOptions {
            snapshot_every: Some(5),
            ..DurableOptions::default()
        },
    )
    .expect("create");
    for b in 0..17 {
        durable.ingest(&batch(b)).unwrap();
    }
    drop(durable);
    let seg = last_wal_segment(&dir);
    let len = fs::metadata(&seg).expect("stat").len();
    assert!(len > 3, "final segment too small to truncate mid-record");
    let bytes = fs::read(&seg).expect("read");
    fs::write(&seg, &bytes[..len as usize - 3]).expect("truncate");

    let got = resume_and_finish(&dir, ResumeOverrides::default());
    assert_eq!(got, expected, "resume after mid-record truncation diverged");
    let _ = fs::remove_dir_all(&dir);
}

/// A corrupted newest snapshot must not poison recovery: the engine
/// falls back to the previous snapshot and replays a longer WAL suffix,
/// landing on the same bits.
#[test]
fn corrupt_snapshot_falls_back_to_older_and_stays_identical() {
    let spec: SamplerSpec = "--window seq --n 64 --mode wor --algo paper --k 4 --seed 902"
        .parse()
        .expect("spec");
    let expected = reference_samples(&spec);
    let dir = tmp_dir("snapfall");
    let mut durable = DurableEngine::<u64, u64>::create(
        &dir,
        spec,
        4,
        2,
        FleetBackend::Auto,
        DurableOptions {
            snapshot_every: Some(4),
            ..DurableOptions::default()
        },
    )
    .expect("create");
    for b in 0..18 {
        durable.ingest(&batch(b)).unwrap();
    }
    durable.sync().unwrap();
    drop(durable);
    let snap = newest_snapshot(&dir);
    let mut bytes = fs::read(&snap).expect("read snapshot");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    fs::write(&snap, bytes).expect("corrupt snapshot");

    let got = resume_and_finish(&dir, ResumeOverrides::default());
    assert_eq!(got, expected, "fallback recovery diverged");
    let _ = fs::remove_dir_all(&dir);
}

/// The corrupt-snapshot failpoint produces the same situation from
/// inside the engine (the CI smoke uses the env-var form).
#[test]
fn corrupt_snapshot_failpoint_is_survivable() {
    let spec: SamplerSpec = "--window seq --n 64 --mode wr --algo chain --k 3 --seed 903"
        .parse()
        .expect("spec");
    let expected = reference_samples(&spec);
    let dir = tmp_dir("snapfp");
    let mut durable = DurableEngine::<u64, u64>::create(
        &dir,
        spec,
        4,
        1,
        FleetBackend::Auto,
        DurableOptions {
            snapshot_every: Some(6),
            fail: "corrupt-snapshot-byte=120".parse().expect("plan"),
            ..DurableOptions::default()
        },
    )
    .expect("create");
    for b in 0..14 {
        durable.ingest(&batch(b)).unwrap();
    }
    durable.sync().unwrap();
    drop(durable);

    let got = resume_and_finish(&dir, ResumeOverrides::default());
    assert_eq!(got, expected, "failpoint-corrupted snapshot diverged");
    let _ = fs::remove_dir_all(&dir);
}

/// Rescale-on-resume: reopening with different shard/thread counts and
/// even the other fleet backend changes nothing about the samples.
#[test]
fn rescale_on_resume_changes_nothing() {
    let spec: SamplerSpec = "--window seq --n 64 --mode wr --algo paper --k 4 --seed 904"
        .parse()
        .expect("spec");
    let expected = reference_samples(&spec);
    let cases = [
        ResumeOverrides {
            shards: Some(16),
            threads: Some(2),
            backend: None,
        },
        ResumeOverrides {
            shards: Some(1),
            threads: Some(1),
            backend: Some(FleetBackend::Erased),
        },
        ResumeOverrides {
            shards: Some(8),
            threads: Some(4),
            backend: Some(FleetBackend::Soa),
        },
    ];
    for (i, overrides) in cases.into_iter().enumerate() {
        let dir = tmp_dir(&format!("rescale{i}"));
        let mut durable = DurableEngine::<u64, u64>::create(
            &dir,
            spec.clone(),
            4,
            2,
            FleetBackend::Soa,
            DurableOptions {
                snapshot_every: Some(9),
                ..DurableOptions::default()
            },
        )
        .expect("create");
        for b in 0..21 {
            durable.ingest(&batch(b)).unwrap();
        }
        durable.sync().unwrap();
        drop(durable);
        let got = resume_and_finish(&dir, overrides);
        assert_eq!(got, expected, "rescale case {i} diverged");
        let _ = fs::remove_dir_all(&dir);
    }
}

/// Mid-stream live rescale through the durable layer: `set_shards`
/// during a logged run, with a crash after it, still recovers to the
/// reference bits (shard count is config, not sampling state).
#[test]
fn live_rescale_then_crash_recovers() {
    let spec: SamplerSpec = "--window ts --w 40 --mode wr --algo paper --k 3 --seed 905"
        .parse()
        .expect("spec");
    let expected = reference_samples(&spec);
    let dir = tmp_dir("liverescale");
    let mut durable = DurableEngine::<u64, u64>::create(
        &dir,
        spec,
        4,
        2,
        FleetBackend::Auto,
        DurableOptions {
            snapshot_every: Some(6),
            ..DurableOptions::default()
        },
    )
    .expect("create");
    for b in 0..10 {
        durable.ingest(&batch(b)).unwrap();
    }
    durable.set_shards(32).expect("rescale up");
    durable.set_threads(4);
    for b in 10..19 {
        durable.ingest(&batch(b)).unwrap();
    }
    drop(durable);
    let seg = last_wal_segment(&dir);
    let mut bytes = fs::read(&seg).expect("read segment");
    bytes.extend_from_slice(&[0xEE; 7]);
    fs::write(&seg, bytes).expect("tear tail");

    let got = resume_and_finish(&dir, ResumeOverrides::default());
    assert_eq!(got, expected, "live rescale + crash diverged");
    let _ = fs::remove_dir_all(&dir);
}
