//! Durability for the keyed fleet engine: a write-ahead segment log,
//! `O(k)`-per-key snapshots, bit-identical crash recovery, and live
//! rescale.
//!
//! The repo's core invariant makes durability cheap: every sampler is a
//! pure function of `(spec, event log)`, with per-key RNG seeds derived
//! from the key alone. So a crash-consistent replica needs exactly two
//! artifacts — a checkpoint of per-key sampler states
//! ([`MultiStreamEngine::save_states`], `O(k)` words per key) and the
//! suffix of ingest batches since that checkpoint (the WAL). Replaying
//! the suffix into the restored fleet reproduces the uncrashed run **bit
//! for bit**, on either fleet backend, at any shard count, at any thread
//! count.
//!
//! The layout on disk, all little-endian, every record CRC-framed
//! (`[len u32][crc32 u32][payload]`, see [`frame`]):
//!
//! * **WAL** ([`wal::SegmentLog`]) — `wal-<index>.seg` files of framed
//!   `[seq u64][batch]` records, one per *ingest batch* (batch
//!   boundaries are replay-significant: some samplers draw RNG in
//!   batch-major order). Appends go to the active segment; the file is
//!   fsynced when it rolls over the segment-size threshold and on
//!   [`snapshot`](engine::DurableEngine::snapshot). A torn final record
//!   in the **final** segment is tolerated at recovery (the crash wrote
//!   a partial frame); torn or corrupt records anywhere else are hard
//!   errors.
//! * **Snapshots** ([`snapshot`]) — `snap-<wal_seq>.snap` files: a
//!   header frame (template spec string, backend, shard/thread counts,
//!   the first WAL seq *not* covered, key count) followed by one frame
//!   per key wrapping the key and the sampler's own checksummed
//!   [`SamplerState`](swsample_core::SamplerState) record. Written to a
//!   temp file, fsynced, then renamed — a crash mid-snapshot leaves the
//!   previous snapshot intact. Recovery takes the newest snapshot that
//!   validates end-to-end and silently falls back to older ones (a
//!   corrupted byte anywhere in a snapshot fails its CRC).
//! * **Recovery** ([`engine::DurableEngine::open`]) — latest valid
//!   snapshot + replay of WAL records with `seq >=` the snapshot's
//!   position.
//!
//! Fault injection for all of the above lives in [`failpoint`]:
//! `SWSAMPLE_FAILPOINT=kill-after-appends=N[,torn-tail=B]` crashes the
//! process (exit code [`failpoint::CRASH_EXIT_CODE`]) mid-ingest, and
//! the CI crash-recovery smoke byte-diffs the resumed run's output
//! against an uncrashed reference.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod engine;
pub mod failpoint;
pub mod frame;
pub mod snapshot;
pub mod wal;

pub use engine::{DurableEngine, DurableOptions, ResumeOverrides};
pub use failpoint::{FailPlan, CRASH_EXIT_CODE, SHUTDOWN_EXIT_CODE};

use std::path::PathBuf;

use swsample_core::state::StateError;
#[cfg(doc)]
use swsample_stream::MultiStreamEngine;

/// Everything that can go wrong opening, appending to, or recovering a
/// durable fleet.
#[derive(Debug)]
pub enum DurableError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// A sampler state record failed to decode or apply.
    State(StateError),
    /// A durable file is structurally invalid (and not covered by the
    /// final-segment torn-tail tolerance).
    Corrupt {
        /// The offending file.
        file: PathBuf,
        /// What failed to validate.
        detail: String,
    },
    /// The on-disk configuration and the caller's disagree (e.g. a
    /// resume with a different template).
    Config(String),
}

impl std::fmt::Display for DurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableError::Io(e) => write!(f, "durable i/o error: {e}"),
            DurableError::State(e) => write!(f, "durable state error: {e}"),
            DurableError::Corrupt { file, detail } => {
                write!(f, "corrupt durable file {}: {detail}", file.display())
            }
            DurableError::Config(msg) => write!(f, "durable config error: {msg}"),
        }
    }
}

impl std::error::Error for DurableError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurableError::Io(e) => Some(e),
            DurableError::State(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DurableError {
    fn from(e: std::io::Error) -> Self {
        DurableError::Io(e)
    }
}

impl From<StateError> for DurableError {
    fn from(e: StateError) -> Self {
        DurableError::State(e)
    }
}
