//! Exact sliding-window statistics (ground truth).
//!
//! A full window buffer — `O(n)` memory, the very thing the paper's
//! algorithms avoid — used by tests and experiments to measure estimator
//! error. Computes exact frequency moments, empirical entropy, and the
//! window's multiset of values.

use std::collections::HashMap;
use std::collections::VecDeque;

/// Exact statistics over the last `n` arrivals of a `u64`-valued stream.
#[derive(Debug, Clone)]
pub struct ExactWindow {
    n: usize,
    buf: VecDeque<u64>,
    freqs: HashMap<u64, u64>,
}

impl ExactWindow {
    /// Exact tracker over windows of the last `n ≥ 1` arrivals.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "ExactWindow: window must be at least 1");
        Self {
            n,
            buf: VecDeque::with_capacity(n + 1),
            freqs: HashMap::new(),
        }
    }

    /// Insert the next arrival.
    pub fn insert(&mut self, value: u64) {
        self.buf.push_back(value);
        *self.freqs.entry(value).or_insert(0) += 1;
        if self.buf.len() > self.n {
            let gone = self.buf.pop_front().expect("nonempty");
            let c = self.freqs.get_mut(&gone).expect("tracked");
            *c -= 1;
            if *c == 0 {
                self.freqs.remove(&gone);
            }
        }
    }

    /// Number of active elements.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no elements are active.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The window's value-frequency table.
    pub fn frequencies(&self) -> &HashMap<u64, u64> {
        &self.freqs
    }

    /// Exact `k`-th frequency moment `F_k = Σ xᵢᵏ` of the window.
    pub fn moment(&self, k: u32) -> f64 {
        self.freqs
            .values()
            .map(|&x| (x as f64).powi(k as i32))
            .sum()
    }

    /// Exact empirical entropy `H = −Σ (xᵢ/N) log₂(xᵢ/N)` of the window.
    pub fn entropy(&self) -> f64 {
        let total = self.buf.len() as f64;
        if total == 0.0 {
            return 0.0;
        }
        self.freqs
            .values()
            .map(|&x| {
                let p = x as f64 / total;
                -p * p.log2()
            })
            .sum()
    }

    /// Number of distinct values in the window (`F_0`).
    pub fn distinct(&self) -> usize {
        self.freqs.len()
    }

    /// Window contents, oldest first.
    pub fn contents(&self) -> impl Iterator<Item = &u64> {
        self.buf.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequencies_track_expiry() {
        let mut w = ExactWindow::new(3);
        for v in [1, 1, 2, 3] {
            w.insert(v);
        }
        // Window = [1, 2, 3].
        assert_eq!(w.len(), 3);
        assert_eq!(w.frequencies()[&1], 1);
        assert_eq!(w.distinct(), 3);
    }

    #[test]
    fn moments_match_hand_computation() {
        let mut w = ExactWindow::new(10);
        for v in [5, 5, 5, 9, 9, 2] {
            w.insert(v);
        }
        // x = {5:3, 9:2, 2:1}; F1 = 6, F2 = 9+4+1 = 14, F3 = 27+8+1 = 36.
        assert_eq!(w.moment(1), 6.0);
        assert_eq!(w.moment(2), 14.0);
        assert_eq!(w.moment(3), 36.0);
    }

    #[test]
    fn entropy_of_uniform_window() {
        let mut w = ExactWindow::new(4);
        for v in [0, 1, 2, 3] {
            w.insert(v);
        }
        assert!((w.entropy() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_of_constant_window_is_zero() {
        let mut w = ExactWindow::new(8);
        for _ in 0..20 {
            w.insert(7);
        }
        assert_eq!(w.entropy(), 0.0);
        assert_eq!(w.distinct(), 1);
    }

    #[test]
    fn empty_window() {
        let w = ExactWindow::new(5);
        assert!(w.is_empty());
        assert_eq!(w.entropy(), 0.0);
        assert_eq!(w.moment(2), 0.0);
    }
}
