//! Network monitoring over a timestamp window — the asynchronous-arrivals
//! use case from the paper's introduction ("timestamp-based windows are
//! important for applications with asynchronous data arrivals, such as
//! networking").
//!
//! A synthetic packet stream (bursty arrivals of flow ids, Zipf-distributed
//! — a few heavy flows, a long tail) is monitored with a without-replacement
//! sample of the last `t0` ticks. Every epoch the example reports the
//! sampled flows, an estimate of the heavy flows' share obtained purely
//! from the sample, and the sampler's (deterministic) memory.
//!
//! ```sh
//! cargo run --example network_monitor
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;
use swsample::core::ts::TsSamplerWor;
use swsample::core::{MemoryWords, WindowSampler};
use swsample::stream::{BurstyArrivals, ZipfGen};

fn main() {
    let t0 = 4_096u64; // window: last 4096 ticks
    let k = 16usize; // sample size
    let flows = 1_000u64;

    let mut sampler = TsSamplerWor::new(t0, k, SmallRng::seed_from_u64(7));
    let mut arrivals = BurstyArrivals::new(ZipfGen::new(flows, 1.1), 8);
    let mut rng = SmallRng::seed_from_u64(11);

    // Ground truth for comparison: per-flow counts over the same window.
    let mut window: std::collections::VecDeque<(u64, u64)> = Default::default(); // (flow, ts)

    println!("monitoring {flows} flows, window = last {t0} ticks, k = {k} (WOR)\n");
    let mut packets = 0u64;
    for epoch in 1..=6u64 {
        // Stream 40,000 packets per epoch.
        for _ in 0..40_000 {
            let ev = arrivals.next_event(&mut rng);
            sampler.advance_time(ev.timestamp);
            sampler.insert(ev.value);
            window.push_back((ev.value, ev.timestamp));
            packets += 1;
        }
        let now = arrivals.now();
        sampler.advance_time(now);
        while window
            .front()
            .is_some_and(|&(_, ts)| now.saturating_sub(ts) >= t0)
        {
            window.pop_front();
        }

        let samples = sampler.sample_k().expect("window is non-empty");
        // Estimate the share of "elephant" flows (id < 10) from the sample.
        let sampled_heavy = samples.iter().filter(|s| *s.value() < 10).count();
        let est_share = sampled_heavy as f64 / samples.len() as f64;
        let true_heavy = window.iter().filter(|&&(f, _)| f < 10).count();
        let true_share = true_heavy as f64 / window.len() as f64;

        println!(
            "epoch {epoch}: {packets:>7} packets seen, window holds {} packets",
            window.len()
        );
        println!(
            "  heavy-flow share: estimated {:.1}% vs true {:.1}%  (from {} samples)",
            100.0 * est_share,
            100.0 * true_share,
            samples.len()
        );
        println!(
            "  sampler memory: {} words (deterministic O(k log n)); exact window would need {} words",
            sampler.memory_words(),
            window.len() * 3
        );
    }
}
