//! Acceptance tests for the spec-driven erased layer (PR 3):
//!
//! 1. The spec flag grammar round-trips (`Display` ∘ `FromStr` = id),
//!    property-checked over the whole field space.
//! 2. Sampling *through* `Box<dyn ErasedWindowSampler>` is the identical
//!    process: chi-square uniformity holds at the same seed thresholds as
//!    the concrete-type tests, and at equal seeds the counts match the
//!    concrete run exactly.
//! 3. `MultiStreamEngine` keys are mutually independent: the joint
//!    distribution of two keys' samples over identical per-key windows is
//!    uniform over the product space.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use swsample::core::seq::SeqSamplerWor;
use swsample::core::spec::{Algorithm, Replacement, SamplerSpec, WindowKind};
use swsample::core::{ErasedWindowSampler, WindowSampler};
use swsample::stats::chi_square_uniform_test;
use swsample::stream::MultiStreamEngine;

fn window_kind(tag: u8, size: u64) -> WindowKind {
    match tag % 3 {
        0 => WindowKind::Sequence(size),
        1 => WindowKind::Timestamp(size),
        _ => WindowKind::WholeStream,
    }
}

fn algorithm(tag: u8) -> Algorithm {
    match tag % 5 {
        0 => Algorithm::Paper,
        1 => Algorithm::ReservoirL,
        2 => Algorithm::Chain,
        3 => Algorithm::Priority,
        _ => Algorithm::WindowBuffer,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Display then parse is the identity on every spec — valid or not —
    /// so the spec grammar cannot drift from the flag surface.
    #[test]
    fn spec_flag_surface_round_trips(
        win_tag in 0u8..3,
        size in 1u64..1_000_000,
        wor in any::<bool>(),
        algo_tag in 0u8..5,
        k in 1usize..1024,
        seed in any::<u64>(),
    ) {
        let spec = SamplerSpec {
            window: window_kind(win_tag, size),
            replacement: if wor { Replacement::Without } else { Replacement::With },
            algorithm: algorithm(algo_tag),
            k,
            seed,
        };
        let rendered = spec.to_string();
        let back: SamplerSpec = rendered.parse().expect("canonical form parses");
        prop_assert_eq!(&back, &spec, "round-trip through `{}`", rendered);
        // And idempotently: re-rendering the parsed spec is stable.
        prop_assert_eq!(back.to_string(), rendered);
    }

    /// Every spec that validates also builds through the full factory,
    /// and the built sampler introspects as exactly that spec.
    #[test]
    fn valid_specs_build_and_introspect(
        win_tag in 0u8..3,
        size in 1u64..10_000,
        wor in any::<bool>(),
        algo_tag in 0u8..5,
        k in 1usize..32,
        seed in any::<u64>(),
    ) {
        let spec = SamplerSpec {
            window: window_kind(win_tag, size),
            replacement: if wor { Replacement::Without } else { Replacement::With },
            algorithm: algorithm(algo_tag),
            k,
            seed,
        };
        if spec.validate().is_ok() {
            let mut s = swsample::baselines::spec::build::<u64>(&spec)
                .expect("valid specs build");
            prop_assert_eq!(s.spec(), Some(&spec));
            prop_assert_eq!(s.k(), k);
            s.advance_and_insert(1, &[1, 2, 3]);
            prop_assert!(s.sample_k().is_some());
        }
    }
}

/// Chi-square uniformity through the erased interface, and exact
/// agreement with the concrete type at equal seeds: erasure is a view,
/// not a reimplementation.
#[test]
fn erased_seq_wor_uniform_and_identical_to_concrete() {
    let (n, k, stop) = (16u64, 4usize, 40u64);
    let trials = 30_000u64;
    let spec_template = SamplerSpec::seq(n, Replacement::Without, k, 0);
    let mut erased_counts = vec![0u64; n as usize];
    let mut concrete_counts = vec![0u64; n as usize];
    let values: Vec<u64> = (0..stop).collect();
    for t in 0..trials {
        let mut spec = spec_template.clone();
        spec.seed = 900_000 + t;
        let mut erased = spec.build::<u64>().expect("builds");
        let mut concrete = SeqSamplerWor::new(n, k, SmallRng::seed_from_u64(900_000 + t));
        for chunk in values.chunks(7) {
            erased.insert_batch(chunk);
            WindowSampler::insert_batch(&mut concrete, chunk);
        }
        for s in erased.sample_k().expect("nonempty") {
            erased_counts[(s.index() - (stop - n)) as usize] += 1;
        }
        for s in WindowSampler::sample_k(&mut concrete).expect("nonempty") {
            concrete_counts[(s.index() - (stop - n)) as usize] += 1;
        }
    }
    assert_eq!(
        erased_counts, concrete_counts,
        "erased and concrete runs must be the same process at equal seeds"
    );
    let out = chi_square_uniform_test(&erased_counts);
    assert!(
        out.p_value > 1e-4,
        "erased-sampler inclusion not uniform: p = {}",
        out.p_value
    );
}

/// Same check for the with-replacement sampler: each erased instance's
/// sample is uniform over the window.
#[test]
fn erased_seq_wr_uniform_through_box() {
    let (n, k, stop) = (16u64, 3usize, 37u64);
    let trials = 20_000u64;
    let mut counts = vec![0u64; n as usize];
    let values: Vec<u64> = (0..stop).collect();
    for t in 0..trials {
        let spec = SamplerSpec::seq(n, Replacement::With, k, 700_000 + t);
        let mut s = spec.build::<u64>().expect("builds");
        for chunk in values.chunks(9) {
            s.insert_batch(chunk);
        }
        for smp in s.sample_k().expect("nonempty") {
            counts[(smp.index() - (stop - n)) as usize] += 1;
        }
    }
    let out = chi_square_uniform_test(&counts);
    assert!(
        out.p_value > 1e-4,
        "erased WR sampler not uniform: p = {}",
        out.p_value
    );
}

/// Cross-key independence in the engine: two keys receive identical
/// 8-element windows; with k = 1 each key's sample position is uniform
/// over 8, and independence makes the joint (pos_a, pos_b) uniform over
/// the 64 cells. Correlated per-key RNG streams would concentrate the
/// diagonal and fail the chi-square.
#[test]
fn multi_stream_keys_are_independent() {
    let n = 8u64;
    let trials = 40_000u64;
    let mut joint = vec![0u64; (n * n) as usize];
    for t in 0..trials {
        let template = SamplerSpec::seq(n, Replacement::With, 1, t);
        let mut engine: MultiStreamEngine<u8, u64> =
            MultiStreamEngine::new(template).expect("engine");
        // Interleaved: both keys see values 0..8 in order, through the
        // grouped batched path.
        let batch: Vec<(u8, u64, u64)> = (0..n).flat_map(|i| [(1u8, 0, i), (2u8, 0, i)]).collect();
        engine.ingest(&batch);
        let a = engine.sample(&1).expect("key 1 nonempty").into_value();
        let b = engine.sample(&2).expect("key 2 nonempty").into_value();
        joint[(a * n + b) as usize] += 1;
    }
    let out = chi_square_uniform_test(&joint);
    assert!(
        out.p_value > 1e-4,
        "cross-key samples not independent/uniform: p = {}",
        out.p_value
    );
    // The scalar view of the same property: sample correlation ≈ 0.
    let total = trials as f64;
    let mean = (n as f64 - 1.0) / 2.0;
    let (mut cov, mut var_a, mut var_b) = (0.0f64, 0.0f64, 0.0f64);
    for a in 0..n {
        for b in 0..n {
            let p = joint[(a * n + b) as usize] as f64 / total;
            let (da, db) = (a as f64 - mean, b as f64 - mean);
            cov += p * da * db;
            var_a += p * da * da;
            var_b += p * db * db;
        }
    }
    let corr = cov / (var_a.sqrt() * var_b.sqrt());
    assert!(
        corr.abs() < 0.05,
        "cross-key sample correlation {corr} too far from 0"
    );
}

/// A fleet mixing algorithm families through the one erased interface —
/// the heterogeneity the redesign exists to allow.
#[test]
fn heterogeneous_fleet_answers_uniformly() {
    let specs = [
        "--window seq --n 50 --mode wr --algo paper --k 2 --seed 1",
        "--window seq --n 50 --mode wor --algo paper --k 2 --seed 2",
        "--window ts --w 10 --mode wor --algo paper --k 2 --seed 3",
        "--window seq --n 50 --mode wr --algo chain --k 2 --seed 4",
        "--window ts --w 10 --mode wor --algo priority --k 2 --seed 5",
        "--window seq --n 50 --mode wor --algo window-buffer --k 2 --seed 6",
        "--window stream --mode wor --algo reservoir-l --k 2 --seed 7",
    ];
    let mut fleet: Vec<Box<dyn ErasedWindowSampler<u64>>> = specs
        .iter()
        .map(|s| {
            swsample::baselines::spec::build(&s.parse::<SamplerSpec>().expect("parses"))
                .expect("builds")
        })
        .collect();
    for tick in 1..=100u64 {
        let values = [tick * 3, tick * 3 + 1, tick * 3 + 2];
        for s in &mut fleet {
            s.advance_and_insert(tick, &values);
        }
    }
    for (i, s) in fleet.iter_mut().enumerate() {
        let out = s
            .sample_k()
            .unwrap_or_else(|| panic!("{}: empty", specs[i]));
        assert!(!out.is_empty() && out.len() <= 2, "{}", specs[i]);
        assert!(s.memory_words() > 0);
        assert_eq!(
            s.spec().map(|sp| sp.to_string()),
            Some(specs[i].to_string())
        );
    }
}
