//! End-to-end server tests over real sockets on an ephemeral port:
//! determinism across the wire, bounded-queue backpressure, continuous
//! queries, stats, and durable graceful shutdown.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use swsample_core::spec::{FleetBackend, SamplerSpec};
use swsample_durable::{DurableEngine, DurableOptions};
use swsample_server::loadgen::{self, LoadgenConfig};
use swsample_server::protocol::SubscribeKind;
use swsample_server::{Client, IngestOutcome, Server, ServerConfig, ServerMsg};

fn template() -> SamplerSpec {
    "--window seq --n 64 --mode wr --algo paper --k 4 --seed 7"
        .parse()
        .expect("template spec")
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    static CASE: AtomicUsize = AtomicUsize::new(0);
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "swsample-server-e2e-{tag}-{}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn start(mut cfg: ServerConfig) -> Server {
    cfg.addr = "127.0.0.1:0".into();
    Server::start(cfg).expect("server start")
}

/// The tentpole acceptance: the server's answers are byte-identical to
/// an offline engine at thread counts {1, 2, 8}, on both backends,
/// with and without a WAL. The loadgen's `verify` mode replays the
/// exact per-connection batches offline and compares every touched key.
#[test]
fn answers_are_deterministic_across_the_wire() {
    for (threads, backend, wal) in [
        (1usize, FleetBackend::Soa, false),
        (2, FleetBackend::Erased, false),
        (8, FleetBackend::Soa, true),
        (2, FleetBackend::Soa, true),
        (8, FleetBackend::Erased, false),
    ] {
        let mut cfg = ServerConfig::new(template());
        cfg.threads = threads;
        cfg.backend = backend;
        let wal_dir = wal.then(|| temp_dir("determinism"));
        cfg.wal_dir = wal_dir.clone();
        let server = start(cfg);
        let addr = server.local_addr().to_string();

        let mut lg = LoadgenConfig::new(&addr);
        lg.connections = 3;
        lg.keys = 50;
        lg.count = 5_000;
        lg.batch = 256;
        lg.verify = true;
        let mut out = Vec::new();
        let report = loadgen::run(&lg, &mut out)
            .unwrap_or_else(|e| panic!("threads={threads} backend={backend:?} wal={wal}: {e}"));
        assert_eq!(report.events_sent, 5_000);
        assert!(
            report.verified_keys > 0,
            "verification must touch at least one key"
        );

        let stats = server.shutdown();
        assert_eq!(
            stats.global.events_applied, 5_000,
            "threads={threads} backend={backend:?} wal={wal}"
        );
        if let Some(dir) = wal_dir {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

/// Backpressure: with a tiny queue and a slowed ingest loop, the
/// high-watermark never exceeds the bound, clients observe `BUSY`, and
/// retries deliver every event — nothing is silently dropped.
#[test]
fn backpressure_bounds_the_queue_without_losing_events() {
    // 100 events: one 64-event batch fits, a second concurrent one
    // cannot, so the four synchronous clients must see BUSY.
    let mut cfg = ServerConfig::new(template());
    cfg.queue_max_events = 100;
    cfg.drain_delay = Duration::from_millis(2);
    let server = start(cfg);
    let addr = server.local_addr().to_string();

    let mut lg = LoadgenConfig::new(&addr);
    lg.connections = 4;
    lg.keys = 32;
    lg.count = 20_000;
    lg.batch = 64;
    lg.verify = true;
    let mut out = Vec::new();
    let report = loadgen::run(&lg, &mut out).expect("loadgen");
    assert!(
        report.busy_retries > 0,
        "a 100-event queue drained at 2ms/batch must push back"
    );

    let stats = server.shutdown();
    assert!(
        stats.global.queue_hwm_events <= 100,
        "queue high-watermark {} exceeded the 100-event bound",
        stats.global.queue_hwm_events
    );
    assert!(stats.global.busy_rejections > 0);
    assert_eq!(
        stats.global.events_applied, 20_000,
        "busy-retried events must all land"
    );
}

/// Continuous queries: an aggregate subscription receives pushes with
/// plausible count/sum on scheduler ticks.
#[test]
fn subscriptions_push_aggregates() {
    let mut cfg = ServerConfig::new(template());
    cfg.tick = Duration::from_millis(5);
    let server = start(cfg);
    let addr = server.local_addr().to_string();

    let mut client = Client::connect(&addr, "subscriber").expect("connect");
    let batch: Vec<(u64, u64, u64)> = (0..100u64).map(|i| (7, i / 64, i)).collect();
    match client.ingest(0, &batch).expect("ingest") {
        IngestOutcome::Applied(n) => assert_eq!(n, 100),
        IngestOutcome::Busy(_) => panic!("empty server rejected a batch"),
    }
    let sub = client
        .subscribe(SubscribeKind::Aggregate, 7, 1, 0)
        .expect("subscribe");
    match client.recv_push().expect("push") {
        ServerMsg::Push {
            id,
            key,
            count,
            sum,
            ..
        } => {
            assert_eq!(id, sub);
            assert_eq!(key, 7);
            assert_eq!(count, 4, "paper k=4 keeps exactly k samples");
            assert!(sum > 0, "samples of value 7 must sum positive");
        }
        other => panic!("expected PUSH, got {other:?}"),
    }

    // Threshold alerts: a bar above any possible sum stays silent; the
    // next push for the zero-threshold sub still arrives, proving the
    // scheduler kept ticking.
    let silent = client
        .subscribe(SubscribeKind::Threshold, 7, 1, u64::MAX)
        .expect("subscribe threshold");
    let push = client.recv_push().expect("second push");
    match push {
        ServerMsg::Push { id, .. } => assert_ne!(id, silent, "threshold sub must stay silent"),
        other => panic!("expected PUSH, got {other:?}"),
    }

    let stats = server.shutdown();
    assert!(stats.global.ticks > 0);
}

/// A slow subscriber's ring drops oldest pushes (never replies) and the
/// drops are counted in STATS.
#[test]
fn slow_subscribers_drop_oldest_pushes() {
    let mut cfg = ServerConfig::new(template());
    cfg.tick = Duration::from_millis(1);
    cfg.ring_capacity = 2;
    let server = start(cfg);
    let addr = server.local_addr().to_string();

    let mut client = Client::connect(&addr, "slowpoke").expect("connect");
    let batch: Vec<(u64, u64, u64)> = (0..64u64).map(|i| (3, i / 64, i)).collect();
    client.ingest(0, &batch).expect("ingest");
    // Hundreds of standing queries: every tick the scheduler bursts
    // that many pushes into the 2-slot ring far faster than the writer
    // thread can sink them, so drop-oldest must engage regardless of
    // how much the kernel socket buffer absorbs.
    for _ in 0..300 {
        client
            .subscribe(SubscribeKind::Aggregate, 3, 1, 0)
            .expect("subscribe");
    }
    // Don't read: drops accumulate, observed via a *second*
    // connection's STATS.
    let mut observer = Client::connect(&addr, "observer").expect("connect observer");
    let mut drops = 0u64;
    for _ in 0..200 {
        std::thread::sleep(Duration::from_millis(5));
        let stats = observer.stats().expect("stats");
        drops = stats.global.subscriber_drops;
        if drops > 0 {
            break;
        }
    }
    assert!(drops > 0, "a 2-slot ring at 1ms ticks must shed pushes");

    // The slow client is wedged behind buffered pushes but its
    // connection still works: drain pushes until the reply comes back.
    let stats = client.stats().expect("stats after backlog");
    assert!(stats.global.subscriber_drops >= drops);
    drop(server.shutdown());
}

/// STATS reports per-connection rows for every open connection.
#[test]
fn stats_report_per_connection_counters() {
    let server = start(ServerConfig::new(template()));
    let addr = server.local_addr().to_string();

    let mut a = Client::connect(&addr, "conn-a").expect("connect a");
    let mut b = Client::connect(&addr, "conn-b").expect("connect b");
    let batch: Vec<(u64, u64, u64)> = (0..10u64).map(|i| (i, 0, i)).collect();
    a.ingest(0, &batch).expect("ingest a");
    let stats = b.stats().expect("stats");
    assert_eq!(stats.conns.len(), 2);
    let row_a = stats
        .conns
        .iter()
        .find(|c| c.conn_id == a.conn_id())
        .expect("conn a row");
    assert_eq!(row_a.events_in, 10);
    assert_eq!(row_a.batches_in, 1);
    assert_eq!(stats.global.connections_total, 2);
    assert_eq!(stats.global.connections_open, 2);
    drop(server.shutdown());
}

/// Durable graceful shutdown: after `shutdown()` drains and snapshots,
/// a fresh offline `DurableEngine` opened on the same directory answers
/// the same samples the live server did.
#[test]
fn durable_shutdown_resumes_byte_identical() {
    let dir = temp_dir("durable-shutdown");
    let mut cfg = ServerConfig::new(template());
    cfg.wal_dir = Some(dir.clone());
    let server = start(cfg);
    let addr = server.local_addr().to_string();

    let mut lg = LoadgenConfig::new(&addr);
    lg.connections = 2;
    lg.keys = 40;
    lg.count = 3_000;
    lg.batch = 128;
    let mut out = Vec::new();
    loadgen::run(&lg, &mut out).expect("loadgen");

    type Answer = Option<Vec<(u64, u64, u64)>>;
    let mut client = Client::connect(&addr, "pre-shutdown").expect("connect");
    let live: Vec<(u64, Answer)> = (0..40u64)
        .map(|key| (key, client.query(key).expect("query")))
        .collect();
    client.bye().expect("bye");
    drop(server.shutdown());

    let offline: DurableEngine<u64, u64> =
        DurableEngine::open(&dir, DurableOptions::default()).expect("reopen WAL dir");
    for (key, expect) in live {
        let got: Option<Vec<(u64, u64, u64)>> = offline.engine().sample_k(&key).map(|samples| {
            samples
                .iter()
                .map(|s| (*s.value(), s.index(), s.timestamp()))
                .collect()
        });
        assert_eq!(got, expect, "key {key} diverged after durable shutdown");
    }
    let _ = std::fs::remove_dir_all(dir);
}

/// The SHUTDOWN opcode flips the server's shutdown flag so an embedding
/// loop (the CLI `serve` command) can tear down.
#[test]
fn shutdown_opcode_raises_the_flag() {
    let server = start(ServerConfig::new(template()));
    let addr = server.local_addr().to_string();
    assert!(!server.shutdown_requested());
    let mut client = Client::connect(&addr, "terminator").expect("connect");
    client.shutdown_server().expect("shutdown opcode");
    for _ in 0..100 {
        if server.shutdown_requested() {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(server.shutdown_requested());
    let stats = server.shutdown();
    assert_eq!(stats.global.connections_total, 1);
}
