//! Property-based tests on the seeded fault-schedule grammar
//! (`swsample::core::fault`), mirroring the durable crate's `FailPlan`
//! robustness suite: arbitrary input never panics the parser, every
//! rejection names the offending token, and valid schedules round-trip
//! through their canonical rendering byte-stably.

use proptest::collection::vec;
use proptest::prelude::*;
use swsample::core::fault::{FaultSchedule, FaultSite};

/// Assemble a syntactically valid schedule string from raw integers:
/// `mask` selects which of the 7 sites get a rule, `denoms`/`stalls`
/// supply the parameters. Stall durations only on stall sites, per the
/// grammar.
fn build_valid_spec(seed: u64, mask: u64, denoms: &[u64], stalls: &[u64]) -> String {
    let mut parts = vec![format!("seed={seed}")];
    for (i, site) in FaultSite::ALL.iter().enumerate() {
        if mask & (1 << i) == 0 {
            continue;
        }
        let denom = denoms[i].max(1);
        if site.takes_duration() {
            parts.push(format!("{}=1/{denom}:{}ms", site.token(), stalls[i].max(1)));
        } else {
            parts.push(format!("{}=1/{denom}", site.token()));
        }
    }
    parts.join(",")
}

/// Decode a char-index vector into a string over a fixed alphabet.
fn decode(alphabet: &str, picks: &[usize]) -> String {
    let chars: Vec<char> = alphabet.chars().collect();
    picks.iter().map(|&p| chars[p % chars.len()]).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes: the parser returns `Err`, never panics.
    #[test]
    fn arbitrary_input_never_panics(bytes in vec(any::<u8>(), 0..120)) {
        let s = String::from_utf8_lossy(&bytes);
        let _ = s.parse::<FaultSchedule>();
    }

    /// Structured near-misses: `name=value` shapes drawn from the
    /// grammar's own alphabet parse or reject cleanly, and every
    /// rejection message names the offending token so a typo'd chaos
    /// run fails loudly and debuggably.
    #[test]
    fn rejections_name_the_offending_token(
        name_picks in vec(0usize..27, 1..16),
        value_picks in vec(0usize..14, 0..12),
    ) {
        let name = decode("abcdefghijklmnopqrstuvwxyz-", &name_picks);
        let value = decode("0123456789/:ms", &value_picks);
        let input = format!("{name}={value}");
        if let Err(msg) = input.parse::<FaultSchedule>() {
            prop_assert!(
                msg.contains(&name) || msg.contains(&value),
                "error `{}` names neither `{}` nor `{}`", msg, name, value
            );
        }
    }

    /// Valid schedules round-trip: parse → Display → parse is identity,
    /// and the canonical rendering is a fixed point (stable under
    /// re-canonicalization), so a logged schedule replays exactly.
    #[test]
    fn valid_schedules_round_trip_canonically(
        seed in any::<u64>(),
        mask in 0u64..128,
        denoms in vec(1u64..5000, 7..8),
        stalls in vec(1u64..500, 7..8),
    ) {
        let spec = build_valid_spec(seed, mask, &denoms, &stalls);
        let parsed: FaultSchedule = spec.parse()
            .unwrap_or_else(|e| panic!("valid spec `{spec}` rejected: {e}"));
        let canonical = parsed.to_string();
        let reparsed: FaultSchedule = canonical.parse()
            .unwrap_or_else(|e| panic!("canonical `{canonical}` rejected: {e}"));
        prop_assert_eq!(&parsed, &reparsed);
        prop_assert_eq!(canonical.clone(), reparsed.to_string(),
            "canonical form must be a fixed point");
    }

    /// Decisions are a pure function of (seed, site, op index): two
    /// schedules parsed from the same spec agree hit-for-hit, and the
    /// empty schedule never fires.
    #[test]
    fn decisions_replay_deterministically(
        seed in any::<u64>(),
        mask in 0u64..128,
        denoms in vec(1u64..200, 7..8),
        stalls in vec(1u64..500, 7..8),
        ops in 1u64..200,
    ) {
        let spec = build_valid_spec(seed, mask, &denoms, &stalls);
        let a: FaultSchedule = spec.parse().unwrap();
        let b: FaultSchedule = spec.parse().unwrap();
        for site in FaultSite::ALL {
            for n in 0..ops {
                prop_assert_eq!(a.fires(site, n).is_some(), b.fires(site, n).is_some());
            }
        }
        let empty = FaultSchedule::default();
        for site in FaultSite::ALL {
            prop_assert!(empty.fires(site, ops).is_none());
        }
    }
}
