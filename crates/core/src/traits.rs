//! The common sampler interface.

use crate::memory::MemoryWords;
use crate::sample::Sample;

/// A uniform random sampler over a sliding window.
///
/// The protocol is: optionally [`advance_time`](WindowSampler::advance_time)
/// (timestamp windows only — sequence windows ignore it), then
/// [`insert`](WindowSampler::insert) each arriving element, and at any point
/// draw the current sample(s).
///
/// Queries take `&mut self` because timestamp-window queries synthesize the
/// implicit events of §3.3 at query time, which consumes randomness; this
/// mirrors the paper. Between two arrivals, repeated queries return
/// individually-uniform (but mutually correlated) samples — an inherent
/// property of sampling with state, not an artifact.
pub trait WindowSampler<T>: MemoryWords {
    /// Move the clock forward to `now`, expiring elements. No-op for
    /// sequence-based windows.
    ///
    /// # Panics
    /// Panics if `now` is smaller than a previously supplied time.
    fn advance_time(&mut self, now: u64) {
        let _ = now;
    }

    /// Insert an arriving element (stamped with the current clock for
    /// timestamp windows).
    fn insert(&mut self, value: T);

    /// Draw one uniform sample from the active window, or `None` if the
    /// window is empty.
    fn sample(&mut self) -> Option<Sample<T>>;

    /// Draw the full `k`-sample. For with-replacement samplers the entries
    /// are independent; for without-replacement samplers they are distinct
    /// elements. Returns `None` when the window is empty. Without
    /// replacement, returns all active elements when fewer than `k` are
    /// active.
    fn sample_k(&mut self) -> Option<Vec<Sample<T>>>;

    /// The configured number of samples `k`.
    fn k(&self) -> usize;
}
