//! Dependency-free JSON emission and validation for the machine-readable
//! benchmark artifacts (`BENCH_throughput.json`).
//!
//! The workspace's dependency policy keeps the runtime surface to `rand`,
//! so instead of serde this module provides the two things the perf
//! trajectory needs: escaping/formatting helpers for *writing* JSON, and a
//! small recursive-descent checker so the `bench_throughput` binary (and
//! the CI smoke step behind it) can assert that what it wrote actually
//! parses before committing it to the repo history.

/// Escape a string for embedding inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` as a JSON number (JSON has no NaN/Infinity; they are
/// clamped to `null`-free sentinels so the artifact always parses).
pub fn number(x: f64) -> String {
    if x.is_finite() {
        // Trim to 6 significant decimals: enough for elems/sec, stable
        // enough to diff across PRs without churn in the far digits.
        let s = format!("{x:.6}");
        let s = s.trim_end_matches('0').trim_end_matches('.');
        if s.is_empty() || s == "-" {
            "0".into()
        } else {
            s.to_string()
        }
    } else {
        "0".into()
    }
}

/// Validate that `s` is one complete JSON value (object, array, string,
/// number, boolean, or null). Returns a position-tagged error otherwise.
pub fn validate(s: &str) -> Result<(), String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, "true"),
        Some(b'f') => literal(b, pos, "false"),
        Some(b'n') => literal(b, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => num(b, pos),
        Some(c) => Err(format!("unexpected byte `{}` at {}", *c as char, *pos)),
        None => Err("unexpected end of input".into()),
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if b.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", c as char, *pos))
    }
}

fn object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    expect(b, pos, b'{')?;
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    expect(b, pos, b'[')?;
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    expect(b, pos, b'"')?;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            match b.get(*pos) {
                                Some(h) if h.is_ascii_hexdigit() => *pos += 1,
                                _ => return Err(format!("bad \\u escape at byte {}", *pos)),
                            }
                        }
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
            }
            c if c < 0x20 => return Err(format!("raw control byte in string at {}", *pos)),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".into())
}

fn num(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |b: &[u8], pos: &mut usize| {
        let s = *pos;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        *pos > s
    };
    if !digits(b, pos) {
        return Err(format!("bad number at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(b, pos) {
            return Err(format!("bad fraction at byte {}", *pos));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !digits(b, pos) {
            return Err(format!("bad exponent at byte {}", *pos));
        }
    }
    Ok(())
}

fn literal(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_documents() {
        for doc in [
            "{}",
            "[]",
            "null",
            "-12.5e3",
            r#"{"a": [1, 2.5, "x\"y", true, null], "b": {"c": -3e-2}}"#,
            "  { \"k\" : \"v\" }\n",
        ] {
            assert!(validate(doc).is_ok(), "rejected valid doc: {doc}");
        }
    }

    #[test]
    fn rejects_invalid_documents() {
        for doc in [
            "",
            "{",
            "{\"a\":}",
            "[1,]",
            "{\"a\" 1}",
            "\"unterminated",
            "01x",
            "{} trailing",
            "{\"a\":1,}",
            "nul",
        ] {
            assert!(validate(doc).is_err(), "accepted invalid doc: {doc}");
        }
    }

    #[test]
    fn escape_round_trips_through_validate() {
        let nasty = "quote\" backslash\\ newline\n tab\t bell\u{7}";
        let doc = format!("{{\"k\":\"{}\"}}", escape(nasty));
        assert!(validate(&doc).is_ok(), "{doc}");
    }

    #[test]
    fn number_formatting_is_json_safe() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(3.0), "3");
        assert_eq!(number(f64::NAN), "0");
        assert_eq!(number(f64::INFINITY), "0");
        for x in [0.0, -2.25, 1234567.875, 1e-6] {
            assert!(validate(&number(x)).is_ok());
        }
    }
}
