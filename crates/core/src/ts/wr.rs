//! Sampling **with replacement** from timestamp-based windows
//! (§3, Theorem 3.9): `k` independent single-sample engines, fused into a
//! [`TsEngineBank`] sharing one covering decomposition.

use super::bank::TsEngineBank;
use super::engine::TsEngine;
use crate::memory::MemoryWords;
use crate::sample::Sample;
use crate::state::{self, SamplerState, StateError};
use crate::track::{NullTracker, SampleTracker};
use crate::traits::WindowSampler;
use rand::Rng;

/// The two interchangeable backends: the fused bank (default) and the
/// PR-3 per-engine construction (retained for equivalence tests, draw
/// audits, and as the benchmark baseline `ts_wr_indep`).
#[derive(Debug, Clone)]
enum WrBackend<T, K: SampleTracker<T>> {
    Bank(TsEngineBank<T, K>),
    Independent(Vec<TsEngine<T, K>>),
}

/// `k` independent uniform samples, *with replacement*, over a timestamp
/// window of width `t0` — `O(k log n)` memory words, deterministic.
///
/// The `k` engines of Theorem 3.9 share one covering decomposition (their
/// bucket boundaries are a deterministic function of the stream; see the
/// [`super::bank`] module docs), so boundary maintenance runs once per
/// arrival and merge coins are served as packed bits: amortized `O(k/32)`
/// RNG words per element instead of the `2k` words of `k` separate
/// engines. The per-engine construction stays available as
/// [`TsSamplerWr::independent`] (mirroring `SeqSamplerWr::naive`) and is
/// distribution-identical — `tests/ts_bank_equivalence.rs` holds both to
/// lockstep boundary equality and the same chi-square thresholds.
///
/// ```
/// use swsample_core::ts::TsSamplerWr;
/// use swsample_core::WindowSampler;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut s = TsSamplerWr::new(60, 2, SmallRng::seed_from_u64(9));
/// for tick in 0..1000u64 {
///     s.advance_time(tick);
///     s.insert(tick * 7); // one arrival per tick
/// }
/// let samples = s.sample_k().unwrap();
/// assert_eq!(samples.len(), 2);
/// for smp in samples {
///     assert!(999 - smp.timestamp() < 60); // all active
/// }
/// ```
#[derive(Debug, Clone)]
pub struct TsSamplerWr<T, R, K: SampleTracker<T> = NullTracker> {
    backend: WrBackend<T, K>,
    rng: R,
    now: u64,
    next_index: u64,
}

impl<T: Clone, R: Rng> TsSamplerWr<T, R, NullTracker> {
    /// Sampler over windows of width `t0 ≥ 1` keeping `k ≥ 1` independent
    /// samples, on the fused-bank fast path.
    pub fn new(t0: u64, k: usize, rng: R) -> Self {
        assert!(k >= 1, "TsSamplerWr: k must be at least 1");
        Self {
            backend: WrBackend::Bank(TsEngineBank::new(t0, k)),
            rng,
            now: 0,
            next_index: 0,
        }
    }

    /// Like [`TsSamplerWr::new`] but running `k` physically independent
    /// engines — the PR-3 construction. Distribution-identical to the
    /// fused bank; kept as the reference implementation for the
    /// equivalence tests and as the benchmark baseline (`ts_wr_indep` in
    /// `BENCH_throughput.json`).
    pub fn independent(t0: u64, k: usize, rng: R) -> Self {
        Self::independent_with_tracker(t0, k, rng, NullTracker)
    }
}

impl<T: Clone, R: Rng, K: SampleTracker<T>> TsSamplerWr<T, R, K> {
    /// Like [`TsSamplerWr::new`] with a per-candidate suffix tracker
    /// (Theorem 5.1 support), on the fused bank.
    pub fn with_tracker(t0: u64, k: usize, rng: R, tracker: K) -> Self {
        assert!(k >= 1, "TsSamplerWr: k must be at least 1");
        Self {
            backend: WrBackend::Bank(TsEngineBank::with_tracker(t0, k, tracker)),
            rng,
            now: 0,
            next_index: 0,
        }
    }

    /// [`TsSamplerWr::independent`] with a tracker — each engine gets a
    /// clone of `tracker`, exactly the PR-3 shape.
    pub fn independent_with_tracker(t0: u64, k: usize, rng: R, tracker: K) -> Self
    where
        K: Clone,
    {
        assert!(k >= 1, "TsSamplerWr: k must be at least 1");
        Self {
            backend: WrBackend::Independent(
                (0..k)
                    .map(|_| TsEngine::with_tracker(t0, tracker.clone()))
                    .collect(),
            ),
            rng,
            now: 0,
            next_index: 0,
        }
    }

    /// Draw the `k` samples together with their tracker statistics;
    /// `None` when the window is empty.
    pub fn sample_k_with_stats(&mut self) -> Option<Vec<(Sample<T>, K::Stat)>> {
        match &mut self.backend {
            WrBackend::Bank(bank) => {
                let mut out = Vec::with_capacity(bank.lanes());
                for lane in 0..bank.lanes() {
                    out.push(bank.sample_lane_with_stat(lane, &mut self.rng)?);
                }
                Some(out)
            }
            WrBackend::Independent(engines) => {
                let mut out = Vec::with_capacity(engines.len());
                for e in &mut *engines {
                    out.push(e.sample_with_stat(&mut self.rng)?);
                }
                Some(out)
            }
        }
    }

    /// Window width `t0`.
    pub fn window(&self) -> u64 {
        match &self.backend {
            WrBackend::Bank(bank) => bank.window(),
            WrBackend::Independent(engines) => engines[0].window(),
        }
    }

    /// Current clock.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Total arrivals observed.
    pub fn len_seen(&self) -> u64 {
        self.next_index
    }

    /// `true` when ingestion runs on the fused `TsEngineBank`.
    pub fn is_fused(&self) -> bool {
        matches!(self.backend, WrBackend::Bank(_))
    }

    /// The bucket-boundary profile (shared across all lanes on the fused
    /// path; engine 0's on the independent path — all engines hold the
    /// same one). See [`TsEngine::boundaries`].
    pub fn boundaries(&self) -> Vec<(u64, u64, u64)> {
        match &self.backend {
            WrBackend::Bank(bank) => bank.boundaries(),
            WrBackend::Independent(engines) => engines[0].boundaries(),
        }
    }

    /// `true` in the Lemma 3.5 case-2 (straddling) state.
    pub fn is_straddling(&self) -> bool {
        match &self.backend {
            WrBackend::Bank(bank) => bank.is_straddling(),
            WrBackend::Independent(engines) => engines[0].is_straddling(),
        }
    }
}

impl<T, R, K: SampleTracker<T>> MemoryWords for TsSamplerWr<T, R, K> {
    fn memory_words(&self) -> usize {
        let backend = match &self.backend {
            WrBackend::Bank(bank) => bank.memory_words(),
            WrBackend::Independent(engines) => engines.memory_words(),
        };
        backend + 2 // + (now, next_index)
    }
}

impl<T: Clone, R: Rng + 'static, K: SampleTracker<T>> WindowSampler<T> for TsSamplerWr<T, R, K> {
    fn advance_time(&mut self, now: u64) {
        assert!(now >= self.now, "TsSamplerWr: clock moved backwards");
        self.now = now;
        match &mut self.backend {
            WrBackend::Bank(bank) => bank.advance_time(now),
            WrBackend::Independent(engines) => {
                for e in engines {
                    e.advance_time(now);
                }
            }
        }
    }

    fn insert(&mut self, value: T) {
        let idx = self.next_index;
        self.next_index += 1;
        match &mut self.backend {
            WrBackend::Bank(bank) => bank.insert(&mut self.rng, value, idx, self.now),
            WrBackend::Independent(engines) => {
                for e in engines {
                    e.insert(&mut self.rng, value.clone(), idx, self.now);
                }
            }
        }
    }

    fn insert_batch(&mut self, values: &[T])
    where
        T: Clone,
    {
        let first = self.next_index;
        self.next_index += values.len() as u64;
        let now = self.now;
        match &mut self.backend {
            // The bank is already one shared structure: a single pass over
            // the batch keeps it hot.
            WrBackend::Bank(bank) => {
                for (j, v) in values.iter().enumerate() {
                    bank.insert(&mut self.rng, v.clone(), first + j as u64, now);
                }
            }
            // Engine-major iteration: each engine ingests the whole run
            // while its covering decomposition is hot in cache. Engines
            // are independent, so the reordering of RNG consumption across
            // engines leaves every engine's distribution unchanged.
            WrBackend::Independent(engines) => {
                for e in engines {
                    for (j, v) in values.iter().enumerate() {
                        e.insert(&mut self.rng, v.clone(), first + j as u64, now);
                    }
                }
            }
        }
    }

    fn sample(&mut self) -> Option<Sample<T>> {
        match &mut self.backend {
            WrBackend::Bank(bank) => bank.sample_lane(0, &mut self.rng),
            WrBackend::Independent(engines) => engines[0].sample(&mut self.rng),
        }
    }

    fn sample_k(&mut self) -> Option<Vec<Sample<T>>> {
        self.sample_k_with_stats()
            .map(|v| v.into_iter().map(|(s, _)| s).collect())
    }

    fn k(&self) -> usize {
        match &self.backend {
            WrBackend::Bank(bank) => bank.lanes(),
            WrBackend::Independent(engines) => engines.len(),
        }
    }

    fn save_state(&self) -> Option<SamplerState<T>> {
        // Only the fused bank checkpoints: the independent backend is a
        // reference construction kept for equivalence tests, not a
        // durability target.
        let bank = match &self.backend {
            WrBackend::Bank(bank) => bank.save_state()?,
            WrBackend::Independent(_) => return None,
        };
        Some(SamplerState::TsWr {
            now: self.now,
            next_index: self.next_index,
            rng: state::capture_rng(&self.rng)?,
            bank,
        })
    }

    fn restore_state(&mut self, state: SamplerState<T>) -> Result<(), StateError> {
        let (now, next_index, rng, bank_state) = match state {
            SamplerState::TsWr {
                now,
                next_index,
                rng,
                bank,
            } => (now, next_index, rng, bank),
            other => {
                return Err(StateError::Mismatch {
                    expected: "ts-wr",
                    found: other.family(),
                })
            }
        };
        let bank = match &mut self.backend {
            WrBackend::Bank(bank) => bank,
            WrBackend::Independent(_) => return Err(StateError::Unsupported),
        };
        if !state::restore_rng(&mut self.rng, &rng) {
            return Err(StateError::Unsupported);
        }
        bank.restore_state(bank_state)?;
        self.now = now;
        self.next_index = next_index;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use swsample_stats::chi_square_uniform_test;

    #[test]
    fn empty_returns_none() {
        let mut s: TsSamplerWr<u64, _> = TsSamplerWr::new(5, 3, SmallRng::seed_from_u64(0));
        assert!(s.is_fused());
        assert!(s.sample().is_none());
        assert!(s.sample_k().is_none());
        let mut ind: TsSamplerWr<u64, _> =
            TsSamplerWr::independent(5, 3, SmallRng::seed_from_u64(0));
        assert!(!ind.is_fused());
        assert!(ind.sample_k().is_none());
    }

    #[test]
    fn k_samples_all_active() {
        for fused in [true, false] {
            let mut s = if fused {
                TsSamplerWr::new(8, 4, SmallRng::seed_from_u64(1))
            } else {
                TsSamplerWr::independent(8, 4, SmallRng::seed_from_u64(1))
            };
            for tick in 0..100u64 {
                s.advance_time(tick);
                s.insert(tick);
                let got = s.sample_k().expect("nonempty");
                assert_eq!(got.len(), 4);
                for smp in got {
                    assert!(tick - smp.timestamp() < 8, "fused={fused}");
                }
            }
        }
    }

    #[test]
    fn joint_distribution_of_two_engines_is_product() {
        // k = 2 fused lanes over a 3-element window: the merge coins come
        // from disjoint bits of shared words, so the joint law must still
        // be the product of uniforms.
        let trials = 40_000u64;
        let mut counts = vec![0u64; 9];
        for t in 0..trials {
            let mut s = TsSamplerWr::new(3, 2, SmallRng::seed_from_u64(50_000 + t));
            for tick in 0..10u64 {
                s.advance_time(tick);
                s.insert(tick);
            }
            let got = s.sample_k().expect("nonempty");
            let a = got[0].index() - 7;
            let b = got[1].index() - 7;
            counts[(a * 3 + b) as usize] += 1;
        }
        let out = chi_square_uniform_test(&counts);
        assert!(
            out.p_value > 1e-4,
            "joint not product-uniform: p = {}",
            out.p_value
        );
    }

    #[test]
    fn memory_linear_in_k() {
        let mut one = TsSamplerWr::new(16, 1, SmallRng::seed_from_u64(2));
        let mut four = TsSamplerWr::new(16, 4, SmallRng::seed_from_u64(3));
        for tick in 0..200u64 {
            one.advance_time(tick);
            four.advance_time(tick);
            for _ in 0..4 {
                one.insert(tick);
                four.insert(tick);
            }
        }
        let (m1, m4) = (one.memory_words(), four.memory_words());
        assert!(m4 <= 4 * m1 + 8, "k=4 memory {m4} vs k=1 {m1}");
    }

    #[test]
    fn fused_memory_is_below_independent() {
        // Shared boundaries shrink the footprint: 6k+3 words per
        // differentiated bucket against 9k across independent engines.
        let mut fused = TsSamplerWr::new(32, 8, SmallRng::seed_from_u64(21));
        let mut indep = TsSamplerWr::independent(32, 8, SmallRng::seed_from_u64(21));
        for tick in 0..300u64 {
            fused.advance_time(tick);
            indep.advance_time(tick);
            for _ in 0..3 {
                fused.insert(tick);
                indep.insert(tick);
            }
            assert!(
                fused.memory_words() <= indep.memory_words(),
                "tick {tick}: fused {} > independent {}",
                fused.memory_words(),
                indep.memory_words()
            );
        }
    }

    #[test]
    fn expiry_empties_sampler() {
        let mut s = TsSamplerWr::new(5, 2, SmallRng::seed_from_u64(4));
        s.advance_time(0);
        s.insert(1u64);
        s.advance_time(100);
        assert!(s.sample_k().is_none());
    }

    #[test]
    fn tracker_counts_suffix_occurrences_on_ts_windows() {
        use crate::track::OccurrenceTracker;
        // Constant stream: the sampled element's suffix count must equal
        // (total arrivals − sample index), exactly as for sequence windows.
        let mut s = TsSamplerWr::with_tracker(10, 1, SmallRng::seed_from_u64(5), OccurrenceTracker);
        let total = 30u64;
        for tick in 0..total {
            s.advance_time(tick);
            s.insert(7u64);
        }
        let (smp, (val, count)) = s
            .sample_k_with_stats()
            .expect("nonempty")
            .pop()
            .expect("k = 1");
        assert_eq!(val, 7);
        assert_eq!(count, total - smp.index());
    }

    #[test]
    fn tracker_stat_survives_merges_and_straddle() {
        use crate::track::OccurrenceTracker;
        // Mixed values; the stat must always count occurrences of the
        // sampled value from its position onward, whatever bucket merges or
        // case-2 transitions happened in between — on both backends, and
        // now with multiple fused lanes sharing singleton stats.
        for fused in [true, false] {
            for k in [1usize, 3] {
                let mut s = if fused {
                    TsSamplerWr::with_tracker(6, k, SmallRng::seed_from_u64(6), OccurrenceTracker)
                } else {
                    TsSamplerWr::independent_with_tracker(
                        6,
                        k,
                        SmallRng::seed_from_u64(6),
                        OccurrenceTracker,
                    )
                };
                let mut values = Vec::new();
                for tick in 0..60u64 {
                    s.advance_time(tick);
                    for j in 0..(tick % 3) + 1 {
                        let v = (tick + j) % 4;
                        s.insert(v);
                        values.push(v);
                    }
                    if let Some(all) = s.sample_k_with_stats() {
                        for (smp, (val, count)) in all {
                            let truth = values[smp.index() as usize..]
                                .iter()
                                .filter(|&&x| x == val)
                                .count() as u64;
                            assert_eq!(
                                count, truth,
                                "stat mismatch at tick {tick} (fused={fused}, k={k})"
                            );
                        }
                    }
                }
            }
        }
    }
}
