//! [`MultiStreamEngine`] — a sharded, multi-core fleet of per-key window
//! samplers over a slab key registry.
//!
//! The paper maintains *one* window sample; a serving system maintains
//! one **per user**: millions of independent logical streams multiplexed
//! over one physical event feed, each answering the same window queries.
//! This engine is that shape. It owns a sharded registry of
//! [`ErasedWindowSampler`]s, one per key, all built lazily from a single
//! template [`SamplerSpec`] (each key gets its own derived RNG seed, so
//! per-key sample streams are mutually independent), and ingests a keyed
//! batch in shard-major, key-major order so the per-sampler batch fast
//! paths (skip-ahead hops, engine-major timestamp ingestion) still fire
//! even when arrivals interleave keys.
//!
//! # The slab key registry
//!
//! Each shard keeps its keys in an **open-addressing index table**
//! (linear probing, `u32` slot ids, load factor ≤ ½) over a **contiguous
//! slot slab**: per key one `(hash, key, sampler)` entry, appended in
//! first-touch order. Two properties make this fast at 10⁵+ keys where a
//! per-shard `HashMap<K, Box<dyn …>>` collapses:
//!
//! * the hot loop touches two dense arrays (table, slab) instead of
//!   hash-map nodes scattered across the heap, and
//! * under skewed (zipf) traffic the hottest keys arrive first, so their
//!   slab entries — and the sampler state allocated while materializing
//!   them — cluster at the front of the slab and stay resident in cache.
//!
//! Batched ingestion resolves every event to its slot id up front, then
//! groups events per slot with one `u64` sort (`slot << 32 | position`,
//! preserving per-key arrival order), so each sampler receives its whole
//! run through one batched call.
//!
//! # Parallel ingestion
//!
//! Shard-ownership makes multi-core ingestion embarrassingly safe: a
//! key's sampler lives in exactly one shard, so processing different
//! shards on different threads cannot race. [`MultiStreamEngine::ingest_parallel`]
//! partitions a keyed batch by shard and feeds a persistent
//! `ShardWorkerPool` of `std::thread` workers over channels (shard `s`
//! always goes to worker `s % threads`), then waits for every sub-batch
//! to complete. Per-key RNG seeds are splitmix-derived from the key
//! alone, and each shard's events are processed in batch order by a
//! single worker, so the resulting per-key samples are **bit-identical
//! for every thread count** — including the serial
//! [`ingest`](MultiStreamEngine::ingest) path. `threads = 1` (the
//! default) never spawns a pool.
//!
//! Memory scales as the paper promises per key: a fleet of `m` active
//! keys with a sequence-WR template costs at most `m · (7k + 3)` words —
//! deterministic, because every per-key sampler inherits its theorem's
//! hard ceiling. [`MultiStreamEngine::memory_words`] and
//! [`MultiStreamEngine::max_key_memory_words`] expose both sides of that
//! accounting, and [`MultiStreamEngine::registry_overhead_words`]
//! reports the registry scaffolding (index table + slab bookkeeping)
//! that the paper's §1.4 model excludes.
//!
//! ```
//! use swsample_core::spec::SamplerSpec;
//! use swsample_stream::MultiStreamEngine;
//!
//! // One 100-arrival WR window per user key.
//! let spec: SamplerSpec = "--window seq --n 100 --k 4 --seed 7".parse().unwrap();
//! let mut engine: MultiStreamEngine<u64, u64> = MultiStreamEngine::new(spec).unwrap();
//! engine.ingest(&[(17, 0, 111), (42, 0, 222), (17, 1, 333)]);
//! assert_eq!(engine.num_keys(), 2);
//! assert_eq!(engine.sample_k(&17).unwrap().len(), 4);
//! assert!(engine.sample_k(&7).is_none(), "untouched key has no window");
//! ```
//!
//! Sharding uses an FxHash-style multiply-rotate hash (the rustc /
//! Firefox workhorse) implemented locally — fast, deterministic across
//! runs, and dependency-free.

use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};

use swsample_core::spec::{SamplerFactory, SamplerSpec, SpecError, WindowKind};
use swsample_core::{ErasedWindowSampler, MemoryWords, Sample};

/// FxHash: multiply-rotate hashing as used by rustc. Not cryptographic —
/// exactly what a shard selector wants.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    state: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Hasher for FxHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(b as u64);
        }
    }

    fn write_u8(&mut self, i: u8) {
        self.add(i as u64);
    }

    fn write_u16(&mut self, i: u16) {
        self.add(i as u64);
    }

    fn write_u32(&mut self, i: u32) {
        self.add(i as u64);
    }

    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }

    fn finish(&self) -> u64 {
        self.state
    }
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

/// `BuildHasher` for [`FxHasher`], usable as a `HashMap` hasher.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

#[inline]
fn fx_hash_key<K: Hash>(key: &K) -> u64 {
    let mut h = FxHasher::default();
    key.hash(&mut h);
    h.finish()
}

/// SplitMix64 finalizer: decorrelates the per-key seed from the raw key
/// hash so adjacent keys do not get adjacent RNG streams.
#[inline]
fn mix_seed(template_seed: u64, key_hash: u64) -> u64 {
    let mut z = template_seed ^ key_hash.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One keyed event: `(key, now, value)`. `now` is the arrival timestamp
/// for timestamp-window templates; sequence templates ignore it.
pub type KeyedEvent<K, T> = (K, u64, T);

/// A shard's per-batch routing entry: `(position, key hash)`. Positions
/// index into the batch handed to [`Shard::ingest`] alongside the route.
type Route = Vec<(u32, u64)>;

/// Empty-bucket sentinel in the open-addressing index table. A real
/// bucket word is `tag | slot` with `slot < u32::MAX`, so all-ones can
/// never collide with one.
const EMPTY: u64 = u64::MAX;

/// High half of a bucket word: the key hash's top 32 bits. Probes
/// compare tags in-register and only touch a slab entry on a tag match,
/// so collision probes stay inside the (dense, cache-resident) table.
const TAG_MASK: u64 = 0xffff_ffff_0000_0000;

/// Low half of a bucket word: the slab slot id.
const SLOT_MASK: u64 = 0x0000_0000_ffff_ffff;

/// One materialized key: the key and its boxed sampler. Entries live
/// contiguously in the shard slab in first-touch order. The key's hash
/// is *not* cached: the bucket word's 32-bit tag already filters
/// non-matches down to 2⁻³² noise, so key equality is checked directly,
/// and the rare rehash recomputes hashes from the keys.
struct Slot<K, T: Clone> {
    key: K,
    sampler: Box<dyn ErasedWindowSampler<T>>,
}

/// One shard: an open-addressing `key → u32` index table over a
/// contiguous slab of per-key samplers, plus everything needed to
/// materialize new keys without consulting the engine (so a worker
/// thread can run a shard in isolation).
struct Shard<K, T: Clone> {
    // Hot fields first: every probe reads the two Vec headers.
    /// `tag | slot` words ([`EMPTY`] = vacant), linear probing,
    /// power-of-two capacity, load factor ≤ ½.
    buckets: Vec<u64>,
    /// The slab: one entry per materialized key, first-touch order.
    slots: Vec<Slot<K, T>>,
    /// Timestamp-window template: key runs must be split into
    /// same-timestamp sub-runs and enter through `advance_and_insert`.
    /// Sequence / whole-stream templates ignore the clock entirely, so
    /// their runs take one `insert_batch` regardless of timestamps.
    split_ts: bool,
    /// Grouping scratch: `slot << 32 | position`, sorted per batch.
    order: Vec<u64>,
    /// Run scratch: the values of one per-key (sub-)run.
    run: Vec<T>,
    template: SamplerSpec,
    factory: SamplerFactory<T>,
}

impl<K: Hash + Eq + Clone, T: Clone + 'static> Shard<K, T> {
    fn new(template: SamplerSpec, factory: SamplerFactory<T>) -> Self {
        let split_ts = matches!(template.window, WindowKind::Timestamp(_));
        Self {
            buckets: vec![EMPTY; 8],
            slots: Vec::new(),
            split_ts,
            order: Vec::new(),
            run: Vec::new(),
            template,
            factory,
        }
    }

    /// Probe for `key` without materializing.
    fn find(&self, hash: u64, key: &K) -> Option<usize> {
        let mask = self.buckets.len() - 1;
        let tag = hash & TAG_MASK;
        let mut i = hash as usize & mask;
        loop {
            let b = self.buckets[i];
            if b == EMPTY {
                return None;
            }
            if b & TAG_MASK == tag && self.slots[(b & SLOT_MASK) as usize].key == *key {
                return Some((b & SLOT_MASK) as usize);
            }
            i = (i + 1) & mask;
        }
    }

    /// Probe for `key`, materializing a fresh sampler from the template
    /// on first touch. Returns the slab index.
    fn slot_index(&mut self, hash: u64, key: &K) -> usize {
        let mask = self.buckets.len() - 1;
        let tag = hash & TAG_MASK;
        let mut i = hash as usize & mask;
        loop {
            let b = self.buckets[i];
            if b == EMPTY {
                return self.materialize(i, hash, key);
            }
            if b & TAG_MASK == tag && self.slots[(b & SLOT_MASK) as usize].key == *key {
                return (b & SLOT_MASK) as usize;
            }
            i = (i + 1) & mask;
        }
    }

    /// Append a new slab entry for `key` and index it; `bucket` is the
    /// vacant probe position under the *current* table size.
    fn materialize(&mut self, bucket: usize, hash: u64, key: &K) -> usize {
        let id = self.slots.len();
        assert!(id < SLOT_MASK as usize, "shard exceeds u32 slot ids");
        let mut spec = self.template.clone();
        spec.seed = mix_seed(self.template.seed, hash);
        let sampler = (self.factory)(&spec).expect("template was validated at construction");
        self.slots.push(Slot {
            key: key.clone(),
            sampler,
        });
        // Keep load factor ≤ ½ so probe chains stay short.
        if (id + 1) * 2 > self.buckets.len() {
            self.grow(); // re-homes every slot, the new one included
        } else {
            self.buckets[bucket] = (hash & TAG_MASK) | id as u64;
        }
        id
    }

    /// Double the index table and re-home every slot, recomputing each
    /// key's hash (the slab itself never moves entries; doublings are
    /// O(log keys) events, so the rehash cost is amortized noise).
    fn grow(&mut self) {
        let cap = (self.buckets.len() * 2).max(16);
        self.buckets.clear();
        self.buckets.resize(cap, EMPTY);
        let mask = cap - 1;
        for (id, slot) in self.slots.iter().enumerate() {
            let hash = fx_hash_key(&slot.key);
            let mut i = hash as usize & mask;
            while self.buckets[i] != EMPTY {
                i = (i + 1) & mask;
            }
            self.buckets[i] = (hash & TAG_MASK) | id as u64;
        }
    }

    /// Ingest this shard's portion of a keyed batch. `route` lists the
    /// shard's events as `(position into batch, key hash)` in arrival
    /// order; grouping per slot preserves that order, so the result is
    /// independent of how the batch was interleaved or which thread runs
    /// the shard.
    fn ingest(&mut self, batch: &[KeyedEvent<K, T>], route: &[(u32, u64)]) {
        // Probe loop first, dispatch loop second: probe iterations are
        // independent (table + slab-entry loads), so their cache misses
        // overlap, and the dispatch loop then starts from warm slab
        // entries with its sampler-state misses overlapping each other
        // instead of queueing behind each element's probe chain.
        let mut order = std::mem::take(&mut self.order);
        order.clear();
        for &(pos, hash) in route {
            let slot = self.slot_index(hash, &batch[pos as usize].0) as u64;
            order.push(slot << 32 | pos as u64);
        }
        if !self.split_ts {
            // Sequence / whole-stream templates dispatch per element in
            // arrival order: `insert` is the reference path (`insert_batch`
            // is defined as its exact repetition — PR 2 pins draw
            // exactness), so this is bit-identical to any grouping — and
            // measurably faster: the skip fast path is two compares, so
            // grouping runs saves less than the slot sort plus run
            // assembly cost, even under zipf skew.
            for &word in &order {
                let (slot, pos) = ((word >> 32) as usize, (word & SLOT_MASK) as usize);
                self.slots[slot].sampler.insert(batch[pos].2.clone());
            }
            self.order = order;
            return;
        }
        // Timestamp templates group: their engine-major batch path is
        // the fast path *and* orders RNG draws differently from
        // per-element ingestion, so every thread count (and the serial
        // path) must use the same grouped dispatch. Slot-major, then
        // arrival order within a slot: one u64 sort.
        order.sort_unstable();
        let mut run = std::mem::take(&mut self.run);
        let mut i = 0;
        while i < order.len() {
            let slot = (order[i] >> 32) as usize;
            let mut end = i + 1;
            while end < order.len() && (order[end] >> 32) as usize == slot {
                end += 1;
            }
            let sampler = self.slots[slot].sampler.as_mut();
            // Maximal same-timestamp sub-runs, one dispatch each.
            let mut j = i;
            while j < end {
                let now = batch[(order[j] & SLOT_MASK) as usize].1;
                run.clear();
                while j < end {
                    let ev = &batch[(order[j] & SLOT_MASK) as usize];
                    if ev.1 != now {
                        break;
                    }
                    run.push(ev.2.clone());
                    j += 1;
                }
                sampler.advance_and_insert(now, &run);
            }
            i = end;
        }
        run.clear();
        self.order = order;
        self.run = run;
    }

    /// Index-table + slab bookkeeping in words (8 bytes): the tagged
    /// bucket words plus, per slot, the key and the boxed sampler's fat
    /// pointer.
    fn overhead_words(&self) -> usize {
        let key_words = std::mem::size_of::<K>().div_ceil(8);
        self.buckets.len() + self.slots.len() * (key_words + 2)
    }
}

/// One parallel-ingestion work item: a shard plus its portion of the
/// batch (with the route precomputed by the dispatching thread).
struct IngestJob<K, T: Clone> {
    shard: Arc<Mutex<Shard<K, T>>>,
    batch: Vec<KeyedEvent<K, T>>,
    route: Route,
    done: mpsc::Sender<()>,
}

/// A persistent pool of `std::thread` ingestion workers fed
/// [`IngestJob`]s over channels.
///
/// Shard-ownership is the safety argument: within one
/// [`MultiStreamEngine::ingest_parallel`] call each shard appears in at
/// most one job, and calls are separated by a completion barrier, so no
/// two jobs ever contend on a shard (the per-shard mutex is uncontended
/// bookkeeping, not a synchronization hot spot). Workers hold nothing
/// between jobs; the pool dies with the engine (dropping the senders
/// ends every worker loop).
struct ShardWorkerPool<K, T: Clone> {
    senders: Vec<mpsc::Sender<IngestJob<K, T>>>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl<K, T> ShardWorkerPool<K, T>
where
    K: Hash + Eq + Clone + Send + 'static,
    T: Clone + Send + 'static,
{
    fn spawn(threads: usize) -> Self {
        let mut senders = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        for w in 0..threads {
            let (tx, rx) = mpsc::channel::<IngestJob<K, T>>();
            let handle = std::thread::Builder::new()
                .name(format!("swsample-shard-worker-{w}"))
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        job.shard
                            .lock()
                            .expect("shard lock poisoned")
                            .ingest(&job.batch, &job.route);
                        // Receiver gone means the dispatcher already
                        // panicked; nothing left to signal.
                        let _ = job.done.send(());
                    }
                })
                .expect("spawn shard worker");
            senders.push(tx);
            handles.push(handle);
        }
        Self { senders, handles }
    }

    fn threads(&self) -> usize {
        self.senders.len()
    }
}

impl<K, T: Clone> Drop for ShardWorkerPool<K, T> {
    fn drop(&mut self) {
        self.senders.clear(); // closes every channel; workers exit
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// A sharded registry of independent per-key window samplers, all
/// described by one template [`SamplerSpec`]. See the [module
/// docs](self) for the registry layout and the parallel-ingestion model.
pub struct MultiStreamEngine<K, T: Clone> {
    template: SamplerSpec,
    shards: Vec<Arc<Mutex<Shard<K, T>>>>,
    shard_mask: u64,
    /// Worker threads `ingest_parallel` uses (1 = inline, no pool).
    threads: usize,
    pool: Option<ShardWorkerPool<K, T>>,
    /// Serial-path scratch: per-shard routes into the caller's batch,
    /// reused across batches.
    routes: Vec<Route>,
}

impl<K, T: Clone> std::fmt::Debug for MultiStreamEngine<K, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiStreamEngine")
            .field("template", &self.template)
            .field("shards", &self.shards.len())
            .field("threads", &self.threads)
            .finish()
    }
}

impl<K: Hash + Eq + Clone, T: Clone + Send + 'static> MultiStreamEngine<K, T> {
    /// Default shard count: enough to keep per-shard tables small (and
    /// parallel ingestion balanced) without bloating empty engines.
    pub const DEFAULT_SHARDS: usize = 16;

    /// Engine whose per-key samplers are built by
    /// [`SamplerSpec::build`] — i.e. the template must use a core-owned
    /// algorithm (paper or reservoir-l). Validates (and test-builds) the
    /// template eagerly.
    pub fn new(template: SamplerSpec) -> Result<Self, SpecError> {
        Self::with_factory(template, Self::DEFAULT_SHARDS, SamplerSpec::build::<T>)
    }

    /// Engine with an explicit shard count and sampler factory. Pass
    /// `swsample_baselines::spec::build` to allow baseline-algorithm
    /// templates. `shards` is rounded up to a power of two.
    pub fn with_factory(
        template: SamplerSpec,
        shards: usize,
        factory: SamplerFactory<T>,
    ) -> Result<Self, SpecError> {
        // Fail now, not on the millionth event: the factory must accept
        // the template (validity + algorithm coverage in one probe).
        factory(&template)?;
        let shards = shards.max(1).next_power_of_two();
        let mut maps = Vec::with_capacity(shards);
        for _ in 0..shards {
            maps.push(Arc::new(Mutex::new(Shard::new(template.clone(), factory))));
        }
        Ok(Self {
            template,
            shard_mask: shards as u64 - 1,
            shards: maps,
            threads: 1,
            pool: None,
            routes: (0..shards).map(|_| Vec::new()).collect(),
        })
    }

    /// The template every per-key sampler is built from (per-key seeds
    /// are derived from its `seed`).
    pub fn template(&self) -> &SamplerSpec {
        &self.template
    }

    /// Number of shards (a power of two).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of keys with materialized samplers.
    pub fn num_keys(&self) -> usize {
        self.shards.iter().map(|s| self.lock(s).slots.len()).sum()
    }

    /// Worker threads [`ingest_parallel`](Self::ingest_parallel) uses.
    pub fn num_threads(&self) -> usize {
        self.threads
    }

    #[inline]
    fn shard_of(&self, hash: u64) -> usize {
        // Fx mixes well in the high bits; fold them down before masking.
        ((hash >> 32) ^ hash) as usize & self.shard_mask as usize
    }

    #[inline]
    #[allow(clippy::type_complexity)]
    fn lock<'a>(
        &self,
        shard: &'a Arc<Mutex<Shard<K, T>>>,
    ) -> std::sync::MutexGuard<'a, Shard<K, T>> {
        shard.lock().expect("shard lock poisoned")
    }

    /// Ingest a keyed batch: `(key, now, value)` triples with
    /// non-decreasing `now` per key (for timestamp-window templates;
    /// sequence templates ignore `now`).
    ///
    /// Events are routed per shard, resolved to slab slots, and grouped
    /// slot-major (preserving per-key arrival order), so each key's run
    /// enters its sampler through one batched call and the skip/batch
    /// fast paths fire even on heavily interleaved feeds. Samplers for
    /// unseen keys are created lazily from the template. The result is
    /// bit-identical to [`ingest_parallel`](Self::ingest_parallel) at
    /// any thread count.
    ///
    /// # Panics
    /// Panics if a key's timestamps run backwards (the per-key sampler's
    /// clock contract), or if the batch exceeds `u32::MAX` events.
    pub fn ingest(&mut self, batch: &[KeyedEvent<K, T>]) {
        if batch.is_empty() {
            return;
        }
        assert!(
            batch.len() <= u32::MAX as usize,
            "batch exceeds u32 positions"
        );
        // Route without copying: each shard's route holds (position into
        // the caller's batch, key hash), so the serial path clones a key
        // only on first-touch materialization and a value only at its
        // sampler dispatch — owned per-shard copies are a shipping cost
        // the parallel path alone pays. Shards still run one at a time to
        // completion, keeping the working set (one index table + one slab
        // + its hot samplers) small.
        let mask = self.shard_mask;
        for route in &mut self.routes {
            route.clear();
        }
        for (pos, (key, _, _)) in batch.iter().enumerate() {
            let hash = fx_hash_key(key);
            let s = (((hash >> 32) ^ hash) & mask) as usize;
            self.routes[s].push((pos as u32, hash));
        }
        for (shard, route) in self.shards.iter().zip(&self.routes) {
            if !route.is_empty() {
                shard
                    .lock()
                    .expect("shard lock poisoned")
                    .ingest(batch, route);
            }
        }
    }

    /// The key's current `k`-sample, or `None` if the key has never
    /// arrived or its window is empty.
    pub fn sample_k(&self, key: &K) -> Option<Vec<Sample<T>>> {
        self.with_sampler(key, |s| s.sample_k())?
    }

    /// One uniform sample from the key's window, or `None` as in
    /// [`sample_k`](MultiStreamEngine::sample_k).
    pub fn sample(&self, key: &K) -> Option<Sample<T>> {
        self.with_sampler(key, |s| s.sample())?
    }

    /// Run `f` against a key's sampler (queries take `&mut` access — see
    /// [`swsample_core::WindowSampler`] on why); `None` if the key has
    /// no materialized sampler. This replaces returning a raw `&mut`
    /// reference: samplers live behind per-shard locks so worker threads
    /// can run shards.
    pub fn with_sampler<R>(
        &self,
        key: &K,
        f: impl FnOnce(&mut dyn ErasedWindowSampler<T>) -> R,
    ) -> Option<R> {
        let hash = fx_hash_key(key);
        let mut shard = self.lock(&self.shards[self.shard_of(hash)]);
        let idx = shard.find(hash, key)?;
        Some(f(shard.slots[idx].sampler.as_mut()))
    }

    /// Has this key a materialized sampler?
    pub fn contains_key(&self, key: &K) -> bool {
        let hash = fx_hash_key(key);
        self.lock(&self.shards[self.shard_of(hash)])
            .find(hash, key)
            .is_some()
    }

    /// All materialized keys (shard order, first-touch order within a
    /// shard). Cloned out because keys live behind the shard locks.
    pub fn keys(&self) -> Vec<K> {
        self.shards
            .iter()
            .flat_map(|s| {
                self.lock(s)
                    .slots
                    .iter()
                    .map(|e| e.key.clone())
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    /// Largest single-key footprint in words — the quantity the paper's
    /// per-window theorems cap deterministically.
    pub fn max_key_memory_words(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let shard = self.lock(s);
                shard
                    .slots
                    .iter()
                    .map(|e| e.sampler.memory_words())
                    .max()
                    .unwrap_or(0)
            })
            .max()
            .unwrap_or(0)
    }

    /// Registry scaffolding in words (8 bytes): the tagged index-table
    /// words plus per-slot hash/key/box-pointer bookkeeping. Outside the
    /// paper's §1.4 stream-element model — reported separately so fleet
    /// sizing can account for it; at the ≤ ½ load factor this is
    /// `2..=4` bucket words (depending on where the table sits between
    /// doublings) plus `2 + size_of::<K>()/8` slot words per
    /// materialized key.
    pub fn registry_overhead_words(&self) -> usize {
        self.shards
            .iter()
            .map(|s| self.lock(s).overhead_words())
            .sum()
    }
}

impl<K, T> MultiStreamEngine<K, T>
where
    K: Hash + Eq + Clone + Send + 'static,
    T: Clone + Send + 'static,
{
    /// Engine with an explicit shard count, factory, and worker-thread
    /// count for [`ingest_parallel`](Self::ingest_parallel).
    pub fn with_threads(
        template: SamplerSpec,
        shards: usize,
        factory: SamplerFactory<T>,
        threads: usize,
    ) -> Result<Self, SpecError> {
        let mut engine = Self::with_factory(template, shards, factory)?;
        engine.set_threads(threads);
        Ok(engine)
    }

    /// Set the worker-thread count for subsequent
    /// [`ingest_parallel`](Self::ingest_parallel) calls. `1` (the
    /// default) ingests inline; higher counts spawn a persistent
    /// `ShardWorkerPool` lazily on the first parallel batch. Capped at
    /// the shard count (extra workers would never receive a shard).
    pub fn set_threads(&mut self, threads: usize) {
        let threads = threads.clamp(1, self.shards.len());
        if threads != self.threads {
            self.threads = threads;
            self.pool = None; // respawned lazily at the new width
        }
    }

    /// Multi-core [`ingest`](Self::ingest): partition the batch by shard
    /// and run the shards on the persistent worker pool, returning when
    /// every sub-batch has been applied. Because a shard is processed by
    /// exactly one worker and per-key seeds derive from the key alone,
    /// the per-key samples are **bit-identical for every thread count**
    /// (equal to the serial path's). With `threads == 1` this *is* the
    /// serial path.
    ///
    /// # Panics
    /// Propagates per-key sampler panics (e.g. a key's timestamps
    /// running backwards) from the worker threads.
    pub fn ingest_parallel(&mut self, batch: &[KeyedEvent<K, T>]) {
        if batch.is_empty() {
            return;
        }
        if self.threads <= 1 || self.shards.len() == 1 {
            return self.ingest(batch);
        }
        assert!(
            batch.len() <= u32::MAX as usize,
            "batch exceeds u32 positions"
        );
        if self.pool.is_none() {
            self.pool = Some(ShardWorkerPool::spawn(self.threads));
        }
        let nshards = self.shards.len();
        let mask = self.shard_mask;
        let mut parts: Vec<Vec<KeyedEvent<K, T>>> = (0..nshards).map(|_| Vec::new()).collect();
        let mut routes: Vec<Route> = (0..nshards).map(|_| Vec::new()).collect();
        for (key, now, value) in batch {
            let hash = fx_hash_key(key);
            let s = (((hash >> 32) ^ hash) & mask) as usize;
            routes[s].push((parts[s].len() as u32, hash));
            parts[s].push((key.clone(), *now, value.clone()));
        }
        let pool = self.pool.as_ref().expect("pool just spawned");
        let (done_tx, done_rx) = mpsc::channel();
        let mut jobs = 0usize;
        for (s, (part, route)) in parts.into_iter().zip(routes).enumerate() {
            if part.is_empty() {
                continue;
            }
            jobs += 1;
            pool.senders[s % pool.threads()]
                .send(IngestJob {
                    shard: Arc::clone(&self.shards[s]),
                    batch: part,
                    route,
                    done: done_tx.clone(),
                })
                .expect("shard worker alive");
        }
        drop(done_tx);
        for _ in 0..jobs {
            // A worker that panicked (poisoned sampler contract) drops
            // its `done` sender without sending; surface that instead of
            // silently losing the sub-batch.
            done_rx.recv().expect("shard ingestion worker panicked");
        }
    }
}

impl<K, T: Clone> MemoryWords for MultiStreamEngine<K, T> {
    /// Fleet-wide footprint: the sum of every per-key sampler's words.
    /// Registry scaffolding (index tables, slab bookkeeping, boxes) is
    /// outside the paper's §1.4 stream-element model, exactly as RNG
    /// state is excluded for single samplers — see
    /// [`MultiStreamEngine::registry_overhead_words`] for that side.
    fn memory_words(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .expect("shard lock poisoned")
                    .slots
                    .iter()
                    .map(|e| e.sampler.memory_words())
                    .sum::<usize>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::values::{ValueGen, ZipfGen};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn seq_wr_spec(n: u64, k: usize, seed: u64) -> SamplerSpec {
        format!("--window seq --n {n} --k {k} --seed {seed}")
            .parse()
            .expect("spec")
    }

    #[test]
    fn fx_hash_is_deterministic_and_spreads() {
        let a = fx_hash_key(&1234u64);
        assert_eq!(a, fx_hash_key(&1234u64));
        assert_ne!(a, fx_hash_key(&1235u64));
        // Spread check: 4096 consecutive keys across 16 shards.
        let mut counts = [0usize; 16];
        for key in 0..4096u64 {
            let h = fx_hash_key(&key);
            counts[(((h >> 32) ^ h) & 15) as usize] += 1;
        }
        for (shard, &c) in counts.iter().enumerate() {
            assert!(
                (128..=384).contains(&c),
                "shard {shard} got {c} of 4096 keys"
            );
        }
    }

    #[test]
    fn lazy_creation_and_per_key_windows() {
        let mut e: MultiStreamEngine<&str, u64> =
            MultiStreamEngine::new(seq_wr_spec(3, 2, 1)).expect("engine");
        assert_eq!(e.num_keys(), 0);
        e.ingest(&[
            ("alice", 0, 1),
            ("bob", 0, 100),
            ("alice", 0, 2),
            ("alice", 0, 3),
            ("alice", 0, 4),
        ]);
        assert_eq!(e.num_keys(), 2);
        assert!(e.contains_key(&"alice") && e.contains_key(&"bob"));
        // Alice's window is her last 3 arrivals — untouched by Bob's.
        for s in e.sample_k(&"alice").expect("nonempty") {
            assert!((2..=4).contains(s.value()), "stale sample {s:?}");
        }
        for s in e.sample_k(&"bob").expect("nonempty") {
            assert_eq!(*s.value(), 100);
        }
        assert!(e.sample_k(&"carol").is_none());
        assert!(e.sample(&"carol").is_none());
        assert_eq!(e.keys().len(), 2);
    }

    #[test]
    fn interleaved_ingest_equals_per_key_ingest() {
        // The grouped batched path must produce exactly the samples a
        // dedicated per-key sampler produces: grouping is a reordering
        // of already-commuting operations, and seeds are derived purely
        // from (template seed, key).
        let template = seq_wr_spec(10, 3, 99);
        let mut e: MultiStreamEngine<u64, u64> =
            MultiStreamEngine::new(template.clone()).expect("engine");
        let keys = [3u64, 17, 290_017];
        let mut batch = Vec::new();
        for round in 0..200u64 {
            for &k in &keys {
                batch.push((k, 0u64, round * 10 + k));
            }
        }
        e.ingest(&batch);

        for &key in &keys {
            let mut spec = template.clone();
            spec.seed = mix_seed(template.seed, fx_hash_key(&key));
            let mut solo = spec.build::<u64>().expect("builds");
            let values: Vec<u64> = (0..200u64).map(|r| r * 10 + key).collect();
            solo.insert_batch(&values);
            assert_eq!(
                e.sample_k(&key),
                solo.sample_k(),
                "key {key}: engine diverges from dedicated sampler"
            );
        }
    }

    #[test]
    fn timestamp_template_expires_per_key() {
        let spec: SamplerSpec = "--window ts --w 5 --mode wor --k 2 --seed 4"
            .parse()
            .expect("spec");
        let mut e: MultiStreamEngine<u8, u64> = MultiStreamEngine::new(spec).expect("engine");
        let mut batch = Vec::new();
        for t in 0..50u64 {
            batch.push((1u8, t, t));
            if t % 3 == 0 {
                batch.push((2u8, t, 1000 + t));
            }
        }
        e.ingest(&batch);
        for s in e.sample_k(&1).expect("nonempty") {
            assert!(s.timestamp() >= 45, "expired sample {s:?}");
        }
        for s in e.sample_k(&2).expect("nonempty") {
            assert!(s.timestamp() >= 45 && *s.value() >= 1000);
        }
    }

    #[test]
    fn distinct_keys_get_distinct_seeds() {
        let template = seq_wr_spec(100, 4, 7);
        let mut e: MultiStreamEngine<u64, u64> = MultiStreamEngine::new(template).expect("engine");
        let batch: Vec<(u64, u64, u64)> = (0..64u64).map(|k| (k, 0, 1)).collect();
        e.ingest(&batch);
        let mut seeds: Vec<u64> = (0..64u64)
            .map(|k| {
                e.with_sampler(&k, |s| s.spec().expect("built via spec").seed)
                    .expect("present")
            })
            .collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 64, "per-key seed collision");
    }

    #[test]
    fn rejects_bad_templates_eagerly() {
        // k = 0 is invalid; chain needs the baselines factory.
        let bad: SamplerSpec = "--window seq --n 5 --k 0".parse().expect("parses");
        assert!(MultiStreamEngine::<u64, u64>::new(bad).is_err());
        let chain: SamplerSpec = "--window seq --n 5 --algo chain".parse().expect("parses");
        assert!(MultiStreamEngine::<u64, u64>::new(chain).is_err());
    }

    #[test]
    fn slab_registry_survives_growth_and_collisions() {
        // One shard forces every key through one table; enough keys to
        // trigger several doublings, interleaved with lookups.
        let mut e: MultiStreamEngine<u64, u64> =
            MultiStreamEngine::with_factory(seq_wr_spec(4, 1, 3), 1, SamplerSpec::build::<u64>)
                .expect("engine");
        for round in 0..4u64 {
            let batch: Vec<(u64, u64, u64)> =
                (0..500u64).map(|k| (k, 0, round * 1000 + k)).collect();
            e.ingest(&batch);
            assert_eq!(e.num_keys(), 500, "round {round}");
        }
        for k in (0..500u64).step_by(97) {
            let got = e.sample_k(&k).expect("key present");
            assert!(got.iter().all(|s| *s.value() % 1000 == k));
        }
        assert!(e.registry_overhead_words() >= 500 * 4);
    }

    #[test]
    fn parallel_ingest_is_bit_identical_to_serial() {
        let template = seq_wr_spec(50, 4, 11);
        let mut serial: MultiStreamEngine<u64, u64> =
            MultiStreamEngine::with_factory(template.clone(), 8, SamplerSpec::build::<u64>)
                .expect("engine");
        let mut parallel: MultiStreamEngine<u64, u64> =
            MultiStreamEngine::with_threads(template, 8, SamplerSpec::build::<u64>, 4)
                .expect("engine");
        assert_eq!(parallel.num_threads(), 4);

        let mut rng = SmallRng::seed_from_u64(9);
        let mut zipf = ZipfGen::new(200, 1.2);
        let events: Vec<(u64, u64, u64)> = (0..20_000u64)
            .map(|i| (zipf.next_value(&mut rng), i / 32, i))
            .collect();
        for chunk in events.chunks(777) {
            serial.ingest(chunk);
            parallel.ingest_parallel(chunk);
        }
        assert_eq!(serial.num_keys(), parallel.num_keys());
        for key in serial.keys() {
            assert_eq!(
                serial.sample_k(&key),
                parallel.sample_k(&key),
                "key {key}: parallel diverges from serial"
            );
        }
    }

    /// The acceptance-criterion test: a 100k-key zipf-skewed stream
    /// through the batched keyed path, with every per-key footprint under
    /// the Theorem 2.1 cap and fleet memory under `keys · cap`.
    #[test]
    fn hundred_thousand_keys_within_paper_caps() {
        let (keys, k, n) = (100_000u64, 16usize, 1_000u64);
        let seq_wr_cap = 7 * k + 3; // Theorem 2.1 ceiling (see tests/theorem_bounds.rs)
        let mut e: MultiStreamEngine<u64, u64> =
            MultiStreamEngine::with_factory(seq_wr_spec(n, k, 42), 64, SamplerSpec::build::<u64>)
                .expect("engine");

        let mut rng = SmallRng::seed_from_u64(7);
        let mut zipf = ZipfGen::new(keys, 1.05);
        let mut batch: Vec<(u64, u64, u64)> = Vec::with_capacity(1024);
        let total = 400_000u64;
        for i in 0..total {
            batch.push((zipf.next_value(&mut rng), i / 64, i));
            if batch.len() == 1024 {
                e.ingest(&batch);
                batch.clear();
            }
        }
        e.ingest(&batch);

        assert!(
            e.num_keys() > 40_000,
            "zipf(1.05) over 100k keys, 400k draws: expected ~48k distinct keys, got {}",
            e.num_keys()
        );
        assert!(
            e.max_key_memory_words() <= seq_wr_cap,
            "hottest key {} words > deterministic cap {seq_wr_cap}",
            e.max_key_memory_words()
        );
        assert!(
            e.memory_words() <= e.num_keys() * seq_wr_cap,
            "fleet {} words > {} keys x {seq_wr_cap}",
            e.memory_words(),
            e.num_keys()
        );
        // And the fleet still answers per-key queries.
        let hot = e.sample_k(&0).expect("hottest key nonempty");
        assert_eq!(hot.len(), k);
    }
}
