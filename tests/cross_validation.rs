//! Cross-crate integration: the paper's samplers validated against the
//! exact full-window buffer (the `O(n)` baseline) and against each other.
//!
//! Distribution equality is tested end-to-end: at identical stream
//! positions, the O(k)-memory samplers and the exact buffer sampler must
//! produce statistically indistinguishable position distributions.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use swsample::baselines::WindowBuffer;
use swsample::core::seq::{SeqSamplerWor, SeqSamplerWr};
use swsample::core::ts::{TsSamplerWor, TsSamplerWr};
use swsample::core::WindowSampler;
use swsample::stats::chi_square_uniform_test;
use swsample::stream::WindowSpec;

#[test]
fn seq_wr_matches_exact_buffer_distribution() {
    let n = 10u64;
    let stop = 37u64;
    let trials = 15_000u64;
    let mut ours = vec![0u64; n as usize];
    let mut exact = vec![0u64; n as usize];
    for t in 0..trials {
        let mut a = SeqSamplerWr::new(n, 1, SmallRng::seed_from_u64(t));
        let mut b = WindowBuffer::new(WindowSpec::Sequence(n), 1, SmallRng::seed_from_u64(t + 1));
        for i in 0..stop {
            a.insert(i);
            b.insert(i);
        }
        ours[(a.sample().expect("nonempty").index() - (stop - n)) as usize] += 1;
        exact[(b.sample().expect("nonempty").index() - (stop - n)) as usize] += 1;
    }
    let p_ours = chi_square_uniform_test(&ours).p_value;
    let p_exact = chi_square_uniform_test(&exact).p_value;
    assert!(p_ours > 1e-4, "our sampler deviates: p = {p_ours}");
    assert!(
        p_exact > 1e-4,
        "buffer sampler deviates: p = {p_exact} (harness bug?)"
    );
}

#[test]
fn seq_wor_tracks_buffer_through_random_stream() {
    // For every prefix length, both samplers must report the same window
    // membership (distinct, correct count, in-window indices).
    let mut rng = SmallRng::seed_from_u64(3);
    for trial in 0..30u64 {
        let n = rng.gen_range(1..40u64);
        let k = rng.gen_range(1..10usize);
        let len = rng.gen_range(1..200u64);
        let mut ours = SeqSamplerWor::new(n, k, SmallRng::seed_from_u64(trial));
        let mut exact =
            WindowBuffer::new(WindowSpec::Sequence(n), k, SmallRng::seed_from_u64(trial));
        for i in 0..len {
            ours.insert(i);
            exact.insert(i);
            let got = ours.sample_k().expect("nonempty");
            let reference = exact.sample_k().expect("nonempty");
            assert_eq!(
                got.len(),
                reference.len(),
                "trial {trial}: size mismatch at {i}"
            );
            let lo = (i + 1).saturating_sub(n);
            for s in &got {
                assert!(s.index() >= lo && s.index() <= i);
                assert_eq!(*s.value(), s.index());
            }
        }
    }
}

#[test]
fn ts_wr_matches_exact_buffer_distribution() {
    let t0 = 6u64;
    let ticks = 20u64;
    let trials = 15_000u64;
    // Deterministic bursty schedule: burst size = (tick % 3) + 1.
    let active: u64 = (ticks - t0..ticks).map(|t| (t % 3) + 1).sum();
    let first_active: u64 = (0..ticks - t0).map(|t| (t % 3) + 1).sum();
    let mut ours = vec![0u64; active as usize];
    let mut exact = vec![0u64; active as usize];
    for t in 0..trials {
        let mut a = TsSamplerWr::new(t0, 1, SmallRng::seed_from_u64(t));
        let mut b = WindowBuffer::new(WindowSpec::Timestamp(t0), 1, SmallRng::seed_from_u64(t + 9));
        let mut idx = 0u64;
        for tick in 0..ticks {
            a.advance_time(tick);
            b.advance_time(tick);
            for _ in 0..(tick % 3) + 1 {
                a.insert(idx);
                b.insert(idx);
                idx += 1;
            }
        }
        ours[(a.sample().expect("nonempty").index() - first_active) as usize] += 1;
        exact[(b.sample().expect("nonempty").index() - first_active) as usize] += 1;
    }
    let p_ours = chi_square_uniform_test(&ours).p_value;
    let p_exact = chi_square_uniform_test(&exact).p_value;
    assert!(p_ours > 1e-4, "ts sampler deviates: p = {p_ours}");
    assert!(
        p_exact > 1e-4,
        "buffer deviates: p = {p_exact} (harness bug?)"
    );
}

#[test]
fn ts_wor_agrees_with_buffer_on_membership() {
    let mut rng = SmallRng::seed_from_u64(11);
    for trial in 0..20u64 {
        let t0 = rng.gen_range(1..20u64);
        let k = rng.gen_range(1..6usize);
        let mut ours = TsSamplerWor::new(t0, k, SmallRng::seed_from_u64(trial));
        let mut exact =
            WindowBuffer::new(WindowSpec::Timestamp(t0), k, SmallRng::seed_from_u64(trial));
        let mut idx = 0u64;
        for tick in 0..100u64 {
            ours.advance_time(tick);
            exact.advance_time(tick);
            for _ in 0..rng.gen_range(0..4u64) {
                ours.insert(idx);
                exact.insert(idx);
                idx += 1;
            }
            match (ours.sample_k(), exact.sample_k()) {
                (None, None) => {}
                (Some(got), Some(reference)) => {
                    assert_eq!(got.len(), reference.len(), "trial {trial}, tick {tick}");
                    for s in &got {
                        assert!(tick - s.timestamp() < t0, "expired sample");
                    }
                }
                (a, b) => panic!(
                    "trial {trial}, tick {tick}: emptiness disagrees (ours {:?}, exact {:?})",
                    a.map(|v| v.len()),
                    b.map(|v| v.len())
                ),
            }
        }
    }
}

#[test]
fn with_and_without_replacement_have_same_marginals() {
    // WR and WOR differ in joint structure but both must be uniform in the
    // single-inclusion marginal.
    let n = 8u64;
    let stop = 20u64;
    let trials = 15_000u64;
    let mut wr_counts = vec![0u64; n as usize];
    let mut wor_counts = vec![0u64; n as usize];
    for t in 0..trials {
        let mut wr = SeqSamplerWr::new(n, 2, SmallRng::seed_from_u64(t));
        let mut wor = SeqSamplerWor::new(n, 2, SmallRng::seed_from_u64(t));
        for i in 0..stop {
            wr.insert(i);
            wor.insert(i);
        }
        for s in wr.sample_k().expect("nonempty") {
            wr_counts[(s.index() - (stop - n)) as usize] += 1;
        }
        for s in wor.sample_k().expect("nonempty") {
            wor_counts[(s.index() - (stop - n)) as usize] += 1;
        }
    }
    assert!(chi_square_uniform_test(&wr_counts).p_value > 1e-4);
    assert!(chi_square_uniform_test(&wor_counts).p_value > 1e-4);
}
