//! Sampling **without replacement** from timestamp-based windows via the §4
//! black-box reduction (Lemmas 4.1–4.3, Theorem 4.4).
//!
//! The construction needs, at query time, samples `R_i` uniform over the
//! active elements **minus the last `i` arrivals**, for `i = k−1 .. 0`,
//! mutually independent — assembled into a `k`-sample without replacement
//! by the Lemma 4.2 recurrence (the *cross-lane rejection*: lane `i`'s
//! draw is replaced by the newest element of its domain whenever it
//! collides with the set built so far):
//!
//! ```text
//! S^{b+1}_{a+1} = S^b_a ∪ {element b+1}   if S^{b+1}_1 ∈ S^b_a
//!               = S^b_a ∪ S^{b+1}_1        otherwise
//! ```
//!
//! PR 3 realized the `R_i` as `k` *delayed* engines: engine `i` ingests an
//! arrival once `i` newer ones exist (Lemma 4.1). Those engines see
//! `k` different stream prefixes, so their bucket boundaries differ and
//! they cannot share a [`TsEngineBank`] directly. The fused construction
//! here shifts where the delay lives:
//!
//! * **Ingestion**: all `k` lanes run at the *same* delay `k−1` — one bank
//!   ingests each arrival exactly once, `k−1` arrivals late. Boundaries
//!   are shared; per-arrival cost collapses from `k` covering walks to
//!   one.
//! * **Query**: lane `k−1` already has the right domain (it seeds the
//!   recurrence). For `i < k−1`, lane `i` is extracted as a standalone
//!   engine and *extended* with its delay-deficit — the `k−1−i` stored
//!   recent arrivals it has not seen — before sampling.
//!
//! This is distribution-exact, not approximate: a §3 engine's sample is
//! uniform over whatever elements it ingested, for **any** valid
//! insert/advance schedule (Theorem 3.9 is schedule-free), so the
//! extended lane `i` — having ingested precisely the active elements
//! minus the last `i` — has exactly the law of PR 3's delayed engine `i`.
//! Independence across lanes holds because lanes consume disjoint coin
//! bits at ingestion and disjoint RNG draws at extension. The PR-3
//! construction is retained as [`TsSamplerWor::independent`] and held to
//! the same chi-square thresholds in `tests/ts_bank_equivalence.rs`.
//!
//! Total memory: `Θ(k + k log n)` words, deterministic (shared boundaries
//! make the bank *smaller* than the `k` separate delayed engines).
//!
//! The trade is ingestion-for-query: the fused path makes every arrival
//! ~20× cheaper, while a full `sample_k` pays `O(k·(log n + k))` clone
//! work to materialize and extend the lanes (the independent path paid
//! `O(k log n)` RNG draws with no clones). Streaming workloads are
//! ingestion-dominated by orders of magnitude, which is why the fusion is
//! the default; a query-heavy caller can construct with
//! [`TsSamplerWor::independent`].

use super::bank::TsEngineBank;
use super::engine::TsEngine;
use crate::memory::MemoryWords;
use crate::sample::Sample;
use crate::state::{self, SamplerState, StateError};
use crate::track::NullTracker;
use crate::traits::WindowSampler;
use rand::Rng;
use std::collections::VecDeque;

/// The two interchangeable backends: the fused bank at uniform delay
/// `k−1` (default) and PR 3's per-engine delayed construction (retained
/// as the reference and benchmark baseline `ts_wor_indep`).
#[derive(Debug, Clone)]
enum WorBackend<T> {
    Bank(TsEngineBank<T, NullTracker>),
    /// `engines[i]` samples the active elements minus the last `i`
    /// arrivals.
    Independent(Vec<TsEngine<T>>),
}

/// A uniform `k`-sample *without replacement* over a timestamp window of
/// width `t0` — Theorem 4.4, `O(k log n)` memory words, deterministic.
///
/// When fewer than `k` elements are active the sample is all of them.
/// Ingestion runs on one fused [`TsEngineBank`] with every lane at delay
/// `k−1`, extended per lane at query time (see the `ts::wor` source
/// module docs for the full construction and its equivalence argument);
/// the per-engine PR-3 shape stays available as
/// [`TsSamplerWor::independent`].
///
/// ```
/// use swsample_core::ts::TsSamplerWor;
/// use swsample_core::WindowSampler;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut s = TsSamplerWor::new(30, 4, SmallRng::seed_from_u64(5));
/// for tick in 0..200u64 {
///     s.advance_time(tick);
///     s.insert(tick);          // one arrival per tick
/// }
/// let out = s.sample_k().unwrap();
/// assert_eq!(out.len(), 4);
/// for smp in &out {
///     assert!(199 - smp.timestamp() < 30);       // all active
/// }
/// ```
#[derive(Debug, Clone)]
pub struct TsSamplerWor<T, R> {
    k: usize,
    backend: WorBackend<T>,
    /// The last `k` arrivals (the paper's auxiliary array), newest at the
    /// back. On the fused path its front element is the one the bank has
    /// just ingested; the newer `k−1` feed the query-time lane extensions.
    recent: VecDeque<Sample<T>>,
    rng: R,
    now: u64,
    next_index: u64,
}

impl<T: Clone, R: Rng> TsSamplerWor<T, R> {
    /// Sampler over windows of width `t0 ≥ 1` maintaining a `k ≥ 1`-sample
    /// without replacement, on the fused-bank fast path.
    pub fn new(t0: u64, k: usize, rng: R) -> Self {
        assert!(k >= 1, "TsSamplerWor: k must be at least 1");
        Self {
            k,
            backend: WorBackend::Bank(TsEngineBank::new(t0, k)),
            recent: VecDeque::with_capacity(k),
            rng,
            now: 0,
            next_index: 0,
        }
    }

    /// Like [`TsSamplerWor::new`] but running `k` physically independent
    /// delayed engines — the PR-3 construction. Distribution-identical;
    /// kept as the reference implementation and benchmark baseline.
    pub fn independent(t0: u64, k: usize, rng: R) -> Self {
        assert!(k >= 1, "TsSamplerWor: k must be at least 1");
        Self {
            k,
            backend: WorBackend::Independent((0..k).map(|_| TsEngine::new(t0)).collect()),
            recent: VecDeque::with_capacity(k),
            rng,
            now: 0,
            next_index: 0,
        }
    }

    /// Window width `t0`.
    pub fn window(&self) -> u64 {
        match &self.backend {
            WorBackend::Bank(bank) => bank.window(),
            WorBackend::Independent(engines) => engines[0].window(),
        }
    }

    /// Current clock.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Total arrivals observed.
    pub fn len_seen(&self) -> u64 {
        self.next_index
    }

    /// `true` when ingestion runs on the fused `TsEngineBank`.
    pub fn is_fused(&self) -> bool {
        matches!(self.backend, WorBackend::Bank(_))
    }

    /// The bucket-boundary profile of the delay-(k−1) state: the bank's
    /// shared skeleton on the fused path, engine `k−1`'s on the
    /// independent path — the two are lockstep-equal (asserted in
    /// `tests/ts_bank_equivalence.rs`).
    pub fn boundaries(&self) -> Vec<(u64, u64, u64)> {
        match &self.backend {
            WorBackend::Bank(bank) => bank.boundaries(),
            WorBackend::Independent(engines) => engines[self.k - 1].boundaries(),
        }
    }

    /// The still-active suffix of the last-`k` array.
    fn active_recent(&self) -> Vec<Sample<T>> {
        let t0 = self.window();
        self.recent
            .iter()
            .filter(|s| self.now - s.timestamp() < t0)
            .cloned()
            .collect()
    }
}

/// Materialize lane `lane` of the fused bank as a standalone engine,
/// extend it with its delay-deficit (the stored recent arrivals it has
/// not ingested), and draw one sample — exactly the law of a PR-3
/// delayed engine `lane` (see the module docs).
fn extended_lane_sample<T: Clone, R: Rng>(
    bank: &TsEngineBank<T, NullTracker>,
    recent: &VecDeque<Sample<T>>,
    rng: &mut R,
    next_index: u64,
    k: usize,
    lane: usize,
) -> Option<Sample<T>> {
    let mut e = bank.lane_engine(lane);
    // recent[p] holds stream index `base + p`; the bank has ingested
    // every index below `released`. Lane `lane` must additionally see
    // all but the last `lane` arrivals.
    let base = next_index - recent.len() as u64;
    let released = next_index.saturating_sub(k as u64 - 1);
    let start = (released - base) as usize;
    let stop = recent.len().saturating_sub(lane);
    for s in recent.iter().take(stop).skip(start) {
        // Lemma 4.1: the engine itself skips arrivals that expired while
        // waiting in the array (only possible when it is empty).
        e.insert(rng, s.value().clone(), s.index(), s.timestamp());
    }
    e.sample(rng)
}

impl<T, R> MemoryWords for TsSamplerWor<T, R> {
    fn memory_words(&self) -> usize {
        let backend = match &self.backend {
            WorBackend::Bank(bank) => bank.memory_words(),
            WorBackend::Independent(engines) => engines.memory_words(),
        };
        backend + self.recent.len() * Sample::<T>::WORDS + 3
    }
}

impl<T: Clone, R: Rng + 'static> WindowSampler<T> for TsSamplerWor<T, R> {
    fn advance_time(&mut self, now: u64) {
        assert!(now >= self.now, "TsSamplerWor: clock moved backwards");
        self.now = now;
        match &mut self.backend {
            WorBackend::Bank(bank) => bank.advance_time(now),
            WorBackend::Independent(engines) => {
                for e in engines {
                    e.advance_time(now);
                }
            }
        }
    }

    fn insert(&mut self, value: T) {
        let item = Sample::new(value, self.next_index, self.now);
        self.next_index += 1;
        match &mut self.backend {
            WorBackend::Bank(bank) => {
                // The bank runs `k−1` arrivals behind: each arrival enters
                // the auxiliary array now and the bank once it is the
                // element with exactly `k−1` newer ones — i.e. whenever
                // the array is full, its front is due.
                self.recent.push_back(item);
                if self.recent.len() > self.k {
                    self.recent.pop_front();
                }
                if self.recent.len() == self.k {
                    let due = &self.recent[0];
                    // Lemma 4.1: the bank skips arrivals that expired
                    // while waiting (only ever offered when it is empty).
                    bank.insert(
                        &mut self.rng,
                        due.value().clone(),
                        due.index(),
                        due.timestamp(),
                    );
                }
            }
            WorBackend::Independent(engines) => {
                // Engine 0 sees the arrival immediately.
                engines[0].insert(
                    &mut self.rng,
                    item.value().clone(),
                    item.index(),
                    item.timestamp(),
                );
                // Push into the auxiliary array *before* feeding the
                // delayed engines: afterwards, recent[len−1−i] is exactly
                // the element with `i` arrivals after it — the one engine
                // `i` is now allowed to see.
                self.recent.push_back(item);
                if self.recent.len() > self.k {
                    self.recent.pop_front();
                }
                for (i, engine) in engines.iter_mut().enumerate().skip(1) {
                    if self.recent.len() > i {
                        let delayed = self.recent[self.recent.len() - 1 - i].clone();
                        engine.insert(
                            &mut self.rng,
                            delayed.value().clone(),
                            delayed.index(),
                            delayed.timestamp(),
                        );
                    }
                }
            }
        }
    }

    fn insert_batch(&mut self, values: &[T])
    where
        T: Clone,
    {
        if values.is_empty() {
            return;
        }
        if self.is_fused() {
            // The bank is one shared structure ingesting each element
            // once; the per-arrival path is already single-dispatch.
            for v in values {
                self.insert(v.clone());
            }
            return;
        }
        match &mut self.backend {
            WorBackend::Bank(_) => unreachable!("handled above"),
            WorBackend::Independent(engines) => {
                let first = self.next_index;
                self.next_index += values.len() as u64;
                let now = self.now;
                // Materialize the combined auxiliary view (old last-k
                // array + the batch) once, then run engine-major: engine
                // `i` sees arrival `j` as soon as `i` newer arrivals
                // exist, i.e. element `combined[old_len + j − i]` —
                // exactly what the per-arrival path feeds it, but with
                // each engine's covering hot in cache.
                let old_len = self.recent.len();
                let mut combined: Vec<Sample<T>> = Vec::with_capacity(old_len + values.len());
                combined.extend(self.recent.iter().cloned());
                for (j, v) in values.iter().enumerate() {
                    combined.push(Sample::new(v.clone(), first + j as u64, now));
                }
                for (i, engine) in engines.iter_mut().enumerate() {
                    for j in 0..values.len() {
                        let pos = old_len + j;
                        if pos >= i {
                            let s = &combined[pos - i];
                            engine.insert(
                                &mut self.rng,
                                s.value().clone(),
                                s.index(),
                                s.timestamp(),
                            );
                        }
                    }
                }
                // The auxiliary array keeps the last k arrivals.
                let keep = combined.len().min(self.k);
                self.recent = combined.split_off(combined.len() - keep).into();
            }
        }
    }

    fn sample(&mut self) -> Option<Sample<T>> {
        match &mut self.backend {
            // Lane 0 extended with everything pending = an undelayed §3
            // sampler of the full window.
            WorBackend::Bank(bank) => extended_lane_sample(
                bank,
                &self.recent,
                &mut self.rng,
                self.next_index,
                self.k,
                0,
            ),
            WorBackend::Independent(engines) => engines[0].sample(&mut self.rng),
        }
    }

    fn sample_k(&mut self) -> Option<Vec<Sample<T>>> {
        let active_recent = self.active_recent();
        let k = self.k;
        // R_{k−1} samples the window minus the last k−1 arrivals; if that
        // domain is empty the whole window fits in the auxiliary array.
        let seed = match &mut self.backend {
            WorBackend::Bank(bank) => bank.sample_lane(k - 1, &mut self.rng),
            WorBackend::Independent(engines) => engines[k - 1].sample(&mut self.rng),
        };
        let seed = match seed {
            Some(s) => s,
            None => {
                return if active_recent.is_empty() {
                    None
                } else {
                    Some(active_recent)
                };
            }
        };
        // n ≥ k: the last k arrivals are all active.
        debug_assert_eq!(active_recent.len(), self.k);
        // Lemma 4.3: fold in R_{k−2}, …, R_0 (the cross-lane rejection).
        let mut set: Vec<Sample<T>> = vec![seed];
        for j in 2..=k {
            let i = k - j; // lane supplying S^{n−k+j}_1
            let r = match &mut self.backend {
                WorBackend::Bank(bank) => {
                    extended_lane_sample(bank, &self.recent, &mut self.rng, self.next_index, k, i)
                }
                WorBackend::Independent(engines) => engines[i].sample(&mut self.rng),
            }
            .expect("lane i's domain contains lane k-1's domain");
            // "Element b+1" of Lemma 4.2: the newest element of lane i's
            // domain = the arrival with exactly i newer arrivals.
            let newcomer = active_recent[active_recent.len() - 1 - i].clone();
            if set.iter().any(|s| s.index() == r.index()) {
                set.push(newcomer);
            } else {
                set.push(r);
            }
        }
        debug_assert_eq!(set.len(), self.k);
        debug_assert!(
            {
                let mut idx: Vec<u64> = set.iter().map(|s| s.index()).collect();
                idx.sort_unstable();
                idx.windows(2).all(|w| w[0] != w[1])
            },
            "without-replacement sample contains a duplicate"
        );
        Some(set)
    }

    fn k(&self) -> usize {
        self.k
    }

    fn save_state(&self) -> Option<SamplerState<T>> {
        // Only the fused bank checkpoints (the independent backend is the
        // reference construction for equivalence tests).
        let bank = match &self.backend {
            WorBackend::Bank(bank) => bank.save_state()?,
            WorBackend::Independent(_) => return None,
        };
        Some(SamplerState::TsWor {
            now: self.now,
            next_index: self.next_index,
            rng: state::capture_rng(&self.rng)?,
            recent: self.recent.iter().cloned().collect(),
            bank,
        })
    }

    fn restore_state(&mut self, state: SamplerState<T>) -> Result<(), StateError> {
        let (now, next_index, rng, recent, bank_state) = match state {
            SamplerState::TsWor {
                now,
                next_index,
                rng,
                recent,
                bank,
            } => (now, next_index, rng, recent, bank),
            other => {
                return Err(StateError::Mismatch {
                    expected: "ts-wor",
                    found: other.family(),
                })
            }
        };
        if recent.len() > self.k {
            return Err(StateError::Corrupt(format!(
                "ts-wor recent array has {} entries for k = {}",
                recent.len(),
                self.k
            )));
        }
        let bank = match &mut self.backend {
            WorBackend::Bank(bank) => bank,
            WorBackend::Independent(_) => return Err(StateError::Unsupported),
        };
        if !state::restore_rng(&mut self.rng, &rng) {
            return Err(StateError::Unsupported);
        }
        bank.restore_state(bank_state)?;
        self.recent = recent.into();
        self.now = now;
        self.next_index = next_index;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use swsample_stats::chi_square_uniform_test;

    /// One element per tick for `ticks` ticks, then query.
    fn drive(
        t0: u64,
        k: usize,
        ticks: u64,
        seed: u64,
    ) -> (TsSamplerWor<u64, SmallRng>, Option<Vec<Sample<u64>>>) {
        let mut s = TsSamplerWor::new(t0, k, SmallRng::seed_from_u64(seed));
        for tick in 0..ticks {
            s.advance_time(tick);
            s.insert(tick);
        }
        let out = s.sample_k();
        (s, out)
    }

    #[test]
    fn empty_returns_none() {
        let mut s: TsSamplerWor<u64, _> = TsSamplerWor::new(5, 3, SmallRng::seed_from_u64(0));
        assert!(s.is_fused());
        assert!(s.sample_k().is_none());
        let mut ind: TsSamplerWor<u64, _> =
            TsSamplerWor::independent(5, 3, SmallRng::seed_from_u64(0));
        assert!(!ind.is_fused());
        assert!(ind.sample_k().is_none());
    }

    #[test]
    fn distinct_and_active() {
        for seed in 0..100 {
            let (_, out) = drive(16, 5, 50, seed);
            let out = out.expect("nonempty");
            assert_eq!(out.len(), 5);
            let mut idx: Vec<u64> = out.iter().map(|s| s.index()).collect();
            idx.sort_unstable();
            for w in idx.windows(2) {
                assert_ne!(w[0], w[1], "duplicate sample");
            }
            for &i in &idx {
                // Active at tick 49: ts in 34..=49 -> index == ts here.
                assert!((34..=49).contains(&i), "index {i} outside window");
            }
        }
    }

    #[test]
    fn returns_all_when_window_small() {
        // Window of width 3, k = 5: only 3 active elements.
        let (_, out) = drive(3, 5, 50, 7);
        let out = out.expect("nonempty");
        let mut idx: Vec<u64> = out.iter().map(|s| s.index()).collect();
        idx.sort_unstable();
        assert_eq!(idx, vec![47, 48, 49]);
    }

    #[test]
    fn marginal_inclusion_uniform() {
        // Window of n = 8 active elements, k = 3: every element appears with
        // probability 3/8; positions must be uniform.
        let (t0, k, ticks) = (8u64, 3usize, 30u64);
        let trials = 25_000u64;
        let mut counts = vec![0u64; t0 as usize];
        for t in 0..trials {
            let (_, out) = drive(t0, k, ticks, 60_000 + t);
            for s in out.expect("nonempty") {
                counts[(s.index() - (ticks - t0)) as usize] += 1;
            }
        }
        let out = chi_square_uniform_test(&counts);
        assert!(
            out.p_value > 1e-4,
            "WOR marginals not uniform: p = {}",
            out.p_value
        );
    }

    #[test]
    fn pairwise_inclusion_uniform() {
        // n = 5, k = 2: all 10 unordered pairs equally likely.
        let (t0, k, ticks) = (5u64, 2usize, 20u64);
        let trials = 30_000u64;
        let n = t0;
        let mut counts = vec![0u64; (n * (n - 1) / 2) as usize];
        for t in 0..trials {
            let (_, out) = drive(t0, k, ticks, 90_000 + t);
            let out = out.expect("nonempty");
            let mut pos: Vec<u64> = out.iter().map(|s| s.index() - (ticks - t0)).collect();
            pos.sort_unstable();
            let (a, b) = (pos[0], pos[1]);
            let rank = a * n - a * (a + 1) / 2 + (b - a - 1);
            counts[rank as usize] += 1;
        }
        let out = chi_square_uniform_test(&counts);
        assert!(
            out.p_value > 1e-4,
            "WOR pairs not uniform: p = {}",
            out.p_value
        );
    }

    #[test]
    fn bursty_stream_stays_distinct() {
        for fused in [true, false] {
            let mut s = if fused {
                TsSamplerWor::new(6, 4, SmallRng::seed_from_u64(11))
            } else {
                TsSamplerWor::independent(6, 4, SmallRng::seed_from_u64(11))
            };
            let mut rng = SmallRng::seed_from_u64(12);
            let mut idx = 0u64;
            for tick in 0..300u64 {
                s.advance_time(tick);
                for _ in 0..rng.gen_range(0..5u64) {
                    s.insert(idx);
                    idx += 1;
                }
                if let Some(out) = s.sample_k() {
                    let mut seen: Vec<u64> = out.iter().map(|x| x.index()).collect();
                    seen.sort_unstable();
                    let len = seen.len();
                    seen.dedup();
                    assert_eq!(seen.len(), len, "duplicates at tick {tick} (fused={fused})");
                    for smp in &out {
                        assert!(
                            tick - smp.timestamp() < 6,
                            "expired sample at tick {tick} (fused={fused})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn memory_scales_as_k_log_n() {
        let (t0, ticks) = (256u64, 1024u64);
        let mut peaks = Vec::new();
        for &k in &[1usize, 2, 4, 8] {
            let mut s = TsSamplerWor::new(t0, k, SmallRng::seed_from_u64(13));
            let mut peak = 0;
            for tick in 0..ticks {
                s.advance_time(tick);
                s.insert(tick);
                peak = peak.max(s.memory_words());
            }
            peaks.push(peak);
        }
        // Deterministic cap: k engines × 9·(2 log2(n)+3) + k aux + slack —
        // the fused bank stays far below it (shared boundaries).
        let log_n = 8; // log2(256)
        for (i, &k) in [1usize, 2, 4, 8].iter().enumerate() {
            let bound = k * 9 * (2 * log_n + 3) + 3 * k + 16;
            assert!(
                peaks[i] <= bound,
                "k={k}: peak {} > bound {bound}",
                peaks[i]
            );
        }
    }

    #[test]
    fn single_sample_works() {
        let (mut s, _) = drive(10, 3, 40, 21);
        let one = s.sample().expect("nonempty");
        assert!(one.index() >= 30);
    }

    #[test]
    fn fused_and_independent_agree_on_small_windows() {
        // Whenever fewer than k elements are active, the k-sample is
        // deterministic (the complete active set), so both backends must
        // return the identical index set. A bursty schedule with gaps
        // repeatedly drops the active count below k mid-stream, so the
        // degenerate path is exercised long after warm-up too.
        for k in [2usize, 4, 6] {
            let mut fused = TsSamplerWor::new(4, k, SmallRng::seed_from_u64(31));
            let mut indep = TsSamplerWor::independent(4, k, SmallRng::seed_from_u64(32));
            let mut sched = SmallRng::seed_from_u64(33);
            let mut compared = 0u32;
            let mut now = 0u64;
            let mut idx = 0u64;
            let mut arrivals: Vec<(u64, u64)> = Vec::new(); // (index, ts)
            for _ in 0..200u64 {
                // Occasional jumps empty most (or all) of the window.
                now += sched.gen_range(1..6u64);
                fused.advance_time(now);
                indep.advance_time(now);
                for _ in 0..sched.gen_range(0..3u64) {
                    fused.insert(idx);
                    indep.insert(idx);
                    arrivals.push((idx, now));
                    idx += 1;
                }
                let active: Vec<u64> = arrivals
                    .iter()
                    .filter(|&&(_, ts)| now - ts < 4)
                    .map(|&(i, _)| i)
                    .collect();
                if active.len() < k {
                    let sorted = |v: Option<Vec<Sample<u64>>>| {
                        v.map(|v| {
                            let mut ix: Vec<u64> = v.iter().map(|s| s.index()).collect();
                            ix.sort_unstable();
                            ix
                        })
                    };
                    let f = sorted(fused.sample_k());
                    let i = sorted(indep.sample_k());
                    let want = if active.is_empty() {
                        None
                    } else {
                        Some(active)
                    };
                    assert_eq!(f, want, "fused at now={now}, k={k}");
                    assert_eq!(i, want, "independent at now={now}, k={k}");
                    compared += 1;
                }
            }
            assert!(
                compared > 50,
                "schedule exercised the degenerate path only {compared} times"
            );
        }
    }
}
