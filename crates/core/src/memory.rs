//! Word-exact memory accounting.
//!
//! The paper states its bounds in *memory words*: "we assume that a single
//! memory word is sufficient to store a stream element or its index or a
//! timestamp" (§1.4). Every sampler in this workspace implements
//! [`MemoryWords`], reporting its exact current footprint under that model:
//! one word per stored value, index, timestamp, or counter.
//!
//! This is what turns the headline claim — deterministic `O(k)` /
//! `O(k log n)` bounds, versus the *randomized* bounds of all previous
//! methods — into an assertable property: the test-suite drives samplers
//! over adversarial streams and asserts hard ceilings on `memory_words()`,
//! something that is provably impossible for chain or priority sampling.

/// Exact memory footprint in the paper's word model.
pub trait MemoryWords {
    /// Number of memory words currently held.
    fn memory_words(&self) -> usize;
}

impl<M: MemoryWords> MemoryWords for Vec<M> {
    fn memory_words(&self) -> usize {
        self.iter().map(MemoryWords::memory_words).sum()
    }
}

impl<M: MemoryWords> MemoryWords for Option<M> {
    fn memory_words(&self) -> usize {
        self.as_ref().map_or(0, MemoryWords::memory_words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(usize);
    impl MemoryWords for Fixed {
        fn memory_words(&self) -> usize {
            self.0
        }
    }

    #[test]
    fn vec_sums() {
        let v = vec![Fixed(2), Fixed(3), Fixed(5)];
        assert_eq!(v.memory_words(), 10);
    }

    #[test]
    fn option_counts_none_as_zero() {
        let some: Option<Fixed> = Some(Fixed(4));
        let none: Option<Fixed> = None;
        assert_eq!(some.memory_words(), 4);
        assert_eq!(none.memory_words(), 0);
    }
}
