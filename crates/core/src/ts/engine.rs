//! The single-sample engine for timestamp-based windows: Lemma 3.5 state
//! maintenance plus the Lemma 3.6–3.8 implicit-event sampling rule.
//!
//! State (Lemma 3.5): at every moment with active elements, the engine holds
//! either
//!
//! 1. `ζ(l(t), N(t))` — a covering decomposition of exactly the active
//!    elements, or
//! 2. `BS(y, z), ζ(z, N(t))` — a *straddling* bucket whose first element is
//!    expired (`y < l(t) ≤ z`) followed by a covering of the all-active
//!    suffix, with the invariant `z − y ≤ N(t) + 1 − z` (i.e. `α ≤ β`).
//!
//! Queries: in case 1 a bucket is chosen with probability proportional to
//! its width and its `R` sample is output. In case 2 the window size
//! `n = β + γ` is unknown (`γ` = active elements inside the straddling
//! bucket); Lemmas 3.6–3.8 synthesize a Bernoulli event of probability
//! exactly `α/(β+γ)` out of the straddling bucket's second sample `Q` —
//! whose *expiry status* is observable even though `γ` is not — and combine
//! `R₁` with the suffix sample into a uniform sample of all active elements.

use super::bucket::BucketStruct;
use super::covering::Covering;
use crate::memory::MemoryWords;
use crate::rngutil::{bernoulli_ratio, BitSource};
use crate::sample::Sample;
use crate::track::{NullTracker, SampleTracker};
use rand::Rng;

/// Lemma 3.5 state.
#[derive(Debug, Clone)]
pub(crate) enum State<T, S> {
    /// No stored elements (empty window, or everything stored has expired).
    Empty,
    /// Case 1: the covering spans exactly the active elements.
    Full(Covering<T, S>),
    /// Case 2: straddling bucket + all-active covering.
    Straddle {
        head: BucketStruct<T, S>,
        tail: Covering<T, S>,
    },
}

/// Single uniform sample over a timestamp window of width `t0`, in
/// `Θ(log n)` words (Theorem 3.9). [`super::TsSamplerWr`] runs `k`
/// independent engines; [`super::TsSamplerWor`] runs `k` *delayed* engines
/// (Lemma 4.1).
/// The engine is generic over a [`SampleTracker`] (Theorem 5.1 support for
/// timestamp windows): each bucket's `R` sample carries a suffix statistic
/// that is updated on every arrival — `O(log n)` tracker updates per
/// element — and survives bucket merges with its sample.
#[derive(Debug, Clone)]
pub struct TsEngine<T, K: SampleTracker<T> = NullTracker> {
    t0: u64,
    now: u64,
    tracker: K,
    /// Coin buffer for the `Incr` merge steps — RNG state, excluded from
    /// the word accounting like the generator it draws from.
    bits: BitSource,
    state: State<T, K::Stat>,
}

impl<T: Clone> TsEngine<T, NullTracker> {
    /// Engine for window width `t0 ≥ 1`, clock starting at 0, no tracking.
    pub fn new(t0: u64) -> Self {
        Self::with_tracker(t0, NullTracker)
    }
}

impl<T: Clone, K: SampleTracker<T>> TsEngine<T, K> {
    /// Engine for window width `t0 ≥ 1` with a per-sample suffix tracker.
    pub fn with_tracker(t0: u64, tracker: K) -> Self {
        assert!(t0 >= 1, "TsEngine: window width must be at least 1");
        Self {
            t0,
            now: 0,
            tracker,
            bits: BitSource::new(),
            state: State::Empty,
        }
    }

    /// Reassemble an engine from raw parts — the fused bank extracting one
    /// of its lanes as a standalone engine (the §4 query-time extension).
    pub(crate) fn from_parts(t0: u64, now: u64, tracker: K, state: State<T, K::Stat>) -> Self {
        let e = Self {
            t0,
            now,
            tracker,
            bits: BitSource::new(),
            state,
        };
        e.debug_check_invariants();
        e
    }

    /// Window width `t0`.
    pub fn window(&self) -> u64 {
        self.t0
    }

    /// Current clock.
    pub fn now(&self) -> u64 {
        self.now
    }

    fn is_active(&self, ts: u64) -> bool {
        debug_assert!(ts <= self.now);
        self.now - ts < self.t0
    }

    /// Advance the clock and run the Lemma 3.5 expiry transitions.
    ///
    /// # Panics
    /// Panics if `now` moves backwards.
    pub fn advance_time(&mut self, now: u64) {
        assert!(
            now >= self.now,
            "TsEngine: clock moved backwards ({} -> {now})",
            self.now
        );
        self.now = now;
        let t0 = self.t0;
        let active = |ts: u64| now - ts < t0;
        let state = std::mem::replace(&mut self.state, State::Empty);
        self.state = match state {
            State::Empty => State::Empty,
            State::Full(mut cov) => {
                if !active(cov.newest_ts()) {
                    // 2(b): every stored element expired.
                    State::Empty
                } else if !active(cov.oldest_ts()) {
                    // 2(c): the expiry boundary crossed into the covering;
                    // split off the straddling bucket.
                    let head = cov.split_straddle(active);
                    State::Straddle { head, tail: cov }
                } else {
                    // 2(a): nothing to do.
                    State::Full(cov)
                }
            }
            State::Straddle { head, mut tail } => {
                if !active(tail.newest_ts()) {
                    // 3(b): everything stored expired.
                    State::Empty
                } else if !active(tail.oldest_ts()) {
                    // 3(c): boundary moved past z; re-split inside the tail
                    // and discard the old head.
                    let head = tail.split_straddle(active);
                    State::Straddle { head, tail }
                } else {
                    // 3(a): keep (y, z); the invariant only strengthens as
                    // the tail grows.
                    State::Straddle { head, tail }
                }
            }
        };
        self.debug_check_invariants();
    }

    /// Insert an element arriving at timestamp `ts` with stream index
    /// `index`.
    ///
    /// Within one engine, indices must be consecutive while the state is
    /// non-empty (the covering needs contiguity); the wrappers guarantee
    /// this. Elements already expired on arrival are skipped — that only
    /// happens for the delayed engines of §4, and only when the engine has
    /// already emptied (Lemma 4.1).
    pub fn insert<R: Rng>(&mut self, rng: &mut R, value: T, index: u64, ts: u64) {
        assert!(
            ts <= self.now,
            "TsEngine: element from the future (ts {ts} > now {})",
            self.now
        );
        if !self.is_active(ts) {
            // Lemma 4.1: skip already-expired arrivals. Anything stored is
            // older, hence also expired; advance_time has emptied the state.
            debug_assert!(matches!(self.state, State::Empty));
            return;
        }
        // Existing samples observe the arrival first (their suffix now
        // includes it) ...
        let tracker = &mut self.tracker;
        match &mut self.state {
            State::Empty => {}
            State::Full(cov) => cov.observe_all(|stat| tracker.observe(stat, &value)),
            State::Straddle { head, tail } => {
                tracker.observe(&mut head.r_stat, &value);
                tail.observe_all(|stat| tracker.observe(stat, &value));
            }
        }
        // ... then the arrival enters with a fresh statistic of its own.
        let stat = self.tracker.fresh(&value, index);
        let item = Sample::new(value, index, ts);
        let bits = &mut self.bits;
        match &mut self.state {
            State::Empty => self.state = State::Full(Covering::new_with_stat(item, stat)),
            State::Full(cov) => cov.incr_with_stat(item, stat, rng, bits),
            State::Straddle { tail, .. } => tail.incr_with_stat(item, stat, rng, bits),
        }
        self.debug_check_invariants();
    }

    /// Draw a uniform sample of the active elements (Lemma 3.8 /
    /// Theorem 3.9); `None` when the window is empty.
    pub fn sample<R: Rng>(&mut self, rng: &mut R) -> Option<Sample<T>> {
        self.sample_with_stat(rng).map(|(s, _)| s)
    }

    /// Like [`TsEngine::sample`], returning the tracker statistic carried
    /// by the sampled element.
    pub fn sample_with_stat<R: Rng>(&mut self, rng: &mut R) -> Option<(Sample<T>, K::Stat)> {
        match &self.state {
            State::Empty => None,
            State::Full(cov) => Some(cov.sample_uniform_with_stat(rng)),
            State::Straddle { head, tail } => Some(self.sample_straddle(head, tail, rng)),
        }
    }

    /// The case-2 sampling rule. `B₁ = B(a, b)` is the straddling bucket
    /// (α = b−a elements, γ of them active, γ unknown), `B₂` the all-active
    /// suffix (β elements).
    fn sample_straddle<R: Rng>(
        &self,
        head: &BucketStruct<T, K::Stat>,
        tail: &Covering<T, K::Stat>,
        rng: &mut R,
    ) -> (Sample<T>, K::Stat) {
        let alpha = head.width();
        let beta = tail.covered_len();
        debug_assert!(
            alpha <= beta,
            "case-2 invariant α ≤ β violated ({alpha} > {beta})"
        );
        // R₂: uniform over B₂.
        let r2 = tail.sample_uniform_with_stat(rng);

        // Lemma 3.6: realize Y from Q₁. Q₁ = q_{b−i} for i ∈ 1..=α.
        let q1 = &head.q;
        let i = head.b - q1.index();
        debug_assert!(i >= 1 && i <= alpha);
        let y_expired = if i < alpha {
            // H_i fires with probability αβ / ((β+i)(β+i−1)); then Y = q_{b−i},
            // otherwise Y = p_a.
            let num = alpha as u128 * beta as u128;
            let den = (beta + i) as u128 * (beta + i - 1) as u128;
            if bernoulli_ratio(rng, num, den) {
                !self.is_active(q1.timestamp())
            } else {
                !self.is_active(head.ts_first)
            }
        } else {
            // Q₁ is p_a itself: Y = p_a.
            !self.is_active(head.ts_first)
        };

        // Lemma 3.7: X = [Y expired] ∧ [S = 1], P(S = 1) = α/β, giving
        // P(X = 1) = (β/(β+γ)) · (α/β) = α/(β+γ) = α/n.
        let x = y_expired && bernoulli_ratio(rng, alpha as u128, beta as u128);

        // Lemma 3.8: V = R₁ if R₁ is active and X = 1, else R₂.
        if x && self.is_active(head.r.timestamp()) {
            (head.r.clone(), head.r_stat.clone())
        } else {
            r2
        }
    }

    /// Is the window currently empty *as far as the engine knows*? (`true`
    /// means a query returns `None`.)
    pub fn is_empty(&self) -> bool {
        matches!(self.state, State::Empty)
    }

    /// The bucket-boundary profile of the current state — `(a, b, T(p_a))`
    /// per bucket, oldest first, with the straddling head included when
    /// present. The profile is a *deterministic* function of the ingested
    /// stream (the merge coins pick which samples survive, never where the
    /// boundaries sit) — the invariant the fused [`super::TsEngineBank`]
    /// exploits, exposed so the lockstep equivalence tests can assert it.
    pub fn boundaries(&self) -> Vec<(u64, u64, u64)> {
        match &self.state {
            State::Empty => Vec::new(),
            State::Full(cov) => cov
                .buckets()
                .iter()
                .map(|b| (b.a, b.b, b.ts_first))
                .collect(),
            State::Straddle { head, tail } => std::iter::once((head.a, head.b, head.ts_first))
                .chain(tail.buckets().iter().map(|b| (b.a, b.b, b.ts_first)))
                .collect(),
        }
    }

    /// `true` in the Lemma 3.5 case-2 (straddling-bucket) state.
    pub fn is_straddling(&self) -> bool {
        matches!(self.state, State::Straddle { .. })
    }

    #[cfg(debug_assertions)]
    fn debug_check_invariants(&self) {
        match &self.state {
            State::Empty => {}
            State::Full(cov) => {
                debug_assert!(cov.is_canonical());
                debug_assert!(
                    self.is_active(cov.oldest_ts()),
                    "case-1 covering must be all-active"
                );
            }
            State::Straddle { head, tail } => {
                debug_assert!(tail.is_canonical());
                debug_assert_eq!(head.b, tail.start(), "head must abut the tail");
                debug_assert!(
                    !self.is_active(head.ts_first),
                    "head's first element must be expired"
                );
                debug_assert!(self.is_active(tail.oldest_ts()), "tail must be all-active");
                debug_assert!(head.width() <= tail.covered_len(), "α ≤ β invariant");
            }
        }
    }

    #[cfg(not(debug_assertions))]
    fn debug_check_invariants(&self) {}
}

impl<T, K: SampleTracker<T>> MemoryWords for TsEngine<T, K> {
    fn memory_words(&self) -> usize {
        let state = match &self.state {
            State::Empty => 0,
            State::Full(cov) => cov.memory_words(),
            State::Straddle { head, tail } => head.memory_words() + tail.memory_words(),
        };
        state + 2 // t0, now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use swsample_stats::chi_square_uniform_test;

    /// Drive an engine over (timestamp, burst-size) pairs, inserting
    /// sequential indices; returns the engine and total insert count.
    fn drive(t0: u64, schedule: &[(u64, u64)], rng: &mut SmallRng) -> (TsEngine<u64>, u64) {
        let mut e = TsEngine::new(t0);
        let mut idx = 0u64;
        for &(ts, burst) in schedule {
            e.advance_time(ts);
            for _ in 0..burst {
                e.insert(rng, idx, idx, ts);
                idx += 1;
            }
        }
        (e, idx)
    }

    #[test]
    fn empty_engine_returns_none() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut e: TsEngine<u64> = TsEngine::new(5);
        assert!(e.sample(&mut rng).is_none());
        assert!(e.is_empty());
    }

    #[test]
    fn everything_expires() {
        let mut rng = SmallRng::seed_from_u64(1);
        let (mut e, _) = drive(3, &[(0, 5), (1, 5)], &mut rng);
        assert!(e.sample(&mut rng).is_some());
        e.advance_time(10);
        assert!(e.sample(&mut rng).is_none());
        assert!(e.is_empty());
    }

    #[test]
    fn restarts_after_total_expiry() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut e = TsEngine::new(2);
        e.advance_time(0);
        e.insert(&mut rng, 0u64, 0, 0);
        e.advance_time(50);
        assert!(e.is_empty());
        e.insert(&mut rng, 1u64, 1, 50);
        let s = e.sample(&mut rng).expect("restarted");
        assert_eq!(s.index(), 1);
    }

    #[test]
    fn sample_always_active() {
        let mut rng = SmallRng::seed_from_u64(3);
        let t0 = 7;
        let mut e = TsEngine::new(t0);
        let mut idx = 0u64;
        let mut ts_of = Vec::new();
        for tick in 0..200u64 {
            e.advance_time(tick);
            let burst = rng.gen_range(0..4u64);
            for _ in 0..burst {
                e.insert(&mut rng, idx, idx, tick);
                ts_of.push(tick);
                idx += 1;
            }
            if let Some(s) = e.sample(&mut rng) {
                let age = tick - ts_of[s.index() as usize];
                assert!(age < t0, "sampled expired element (age {age})");
            }
        }
    }

    #[test]
    fn uniform_on_steady_stream_case2() {
        // One element per tick, window t0 = 16, query at tick 40: active
        // elements are exactly those with ts in (40-16, 40] -> 16 elements.
        // This exercises case 2 (straddling bucket) heavily.
        let t0 = 16u64;
        let last_tick = 40u64;
        let trials = 30_000u64;
        let mut counts = vec![0u64; t0 as usize];
        for t in 0..trials {
            let mut rng = SmallRng::seed_from_u64(100_000 + t);
            let schedule: Vec<(u64, u64)> = (0..=last_tick).map(|i| (i, 1)).collect();
            let (mut e, n) = drive(t0, &schedule, &mut rng);
            assert_eq!(n, last_tick + 1);
            let s = e.sample(&mut rng).expect("nonempty");
            // Active indices: last_tick-t0+1 ..= last_tick.
            let lo = last_tick - t0 + 1;
            assert!(s.index() >= lo);
            counts[(s.index() - lo) as usize] += 1;
        }
        let out = chi_square_uniform_test(&counts);
        assert!(
            out.p_value > 1e-4,
            "steady-stream case-2 not uniform: p = {}",
            out.p_value
        );
    }

    #[test]
    fn uniform_on_bursty_stream() {
        // Deterministic bursty schedule so every trial has the same active
        // set; uniformity over that set is chi-squared.
        let t0 = 4u64;
        // (tick, burst): active at t=9 are ticks 6..=9 -> bursts 5,1,4,2 = 12 elems.
        let schedule: Vec<(u64, u64)> = vec![
            (0, 3),
            (1, 7),
            (2, 2),
            (3, 1),
            (4, 6),
            (5, 2),
            (6, 5),
            (7, 1),
            (8, 4),
            (9, 2),
        ];
        let active_count = 5 + 1 + 4 + 2;
        let first_active_idx: u64 = (3 + 7 + 2 + 1 + 6 + 2) as u64;
        let trials = 30_000u64;
        let mut counts = vec![0u64; active_count as usize];
        for t in 0..trials {
            let mut rng = SmallRng::seed_from_u64(200_000 + t);
            let (mut e, _) = drive(t0, &schedule, &mut rng);
            let s = e.sample(&mut rng).expect("nonempty");
            assert!(
                s.index() >= first_active_idx,
                "expired sample {}",
                s.index()
            );
            counts[(s.index() - first_active_idx) as usize] += 1;
        }
        let out = chi_square_uniform_test(&counts);
        assert!(
            out.p_value > 1e-4,
            "bursty not uniform: p = {}",
            out.p_value
        );
    }

    #[test]
    fn uniform_in_case1_fresh_window() {
        // All elements arrive at the same tick and none expire: pure case 1.
        let trials = 30_000u64;
        let m = 13u64;
        let mut counts = vec![0u64; m as usize];
        for t in 0..trials {
            let mut rng = SmallRng::seed_from_u64(300_000 + t);
            let (mut e, _) = drive(100, &[(0, m)], &mut rng);
            counts[e.sample(&mut rng).expect("nonempty").index() as usize] += 1;
        }
        let out = chi_square_uniform_test(&counts);
        assert!(
            out.p_value > 1e-4,
            "case-1 not uniform: p = {}",
            out.p_value
        );
    }

    #[test]
    fn memory_logarithmic_in_active_count() {
        let mut rng = SmallRng::seed_from_u64(4);
        // 2^15 elements in one tick: memory must stay O(log n) words.
        let mut e = TsEngine::new(10);
        e.advance_time(0);
        for i in 0..(1u64 << 15) {
            e.insert(&mut rng, i, i, 0);
        }
        let words = e.memory_words();
        // ~2·log2(n) buckets of 9 words each, plus slack.
        let bound = 9 * (2 * 15 + 2) + 16;
        assert!(words <= bound, "memory {words} > bound {bound}");
    }

    #[test]
    fn memory_bounded_across_sliding() {
        let mut rng = SmallRng::seed_from_u64(5);
        let t0 = 64u64;
        let mut e = TsEngine::new(t0);
        let mut idx = 0u64;
        let mut peak = 0usize;
        for tick in 0..2000u64 {
            e.advance_time(tick);
            for _ in 0..8 {
                e.insert(&mut rng, idx, idx, tick);
                idx += 1;
            }
            peak = peak.max(e.memory_words());
        }
        // n = 8·64 = 512 active; deterministic O(log n) cap.
        let bound = 9 * (2 * 10 + 3) + 16;
        assert!(peak <= bound, "peak {peak} > bound {bound}");
    }

    #[test]
    #[should_panic]
    fn clock_cannot_go_backwards() {
        let mut e: TsEngine<u64> = TsEngine::new(5);
        e.advance_time(10);
        e.advance_time(9);
    }

    #[test]
    fn gap_bigger_than_window_resets_cleanly() {
        let mut rng = SmallRng::seed_from_u64(6);
        let mut e = TsEngine::new(5);
        for epoch in 0..20u64 {
            let base = epoch * 1000;
            e.advance_time(base);
            for j in 0..10u64 {
                e.insert(&mut rng, j, epoch * 10 + j, base);
            }
            let s = e.sample(&mut rng).expect("fresh epoch nonempty");
            assert!(s.index() >= epoch * 10);
        }
    }
}
