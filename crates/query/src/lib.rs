//! Approximate windowed query processing on top of the paper's samplers.
//!
//! The reason uniform window sampling matters (the paper's §1: "numerous
//! algorithms operate on the sampled data instead of on the entire stream")
//! is that one maintained sample answers many queries. This crate is that
//! consumer layer — the piece a data-stream system would actually call:
//!
//! * [`aggregates`] — sample-based windowed aggregates: mean, sum,
//!   quantiles, and value-share ("what fraction of the window is X?"),
//!   each with the standard sampling error `O(1/√k)`.
//! * [`heavy_hitters`] — sample-based frequent-element detection over the
//!   window.
//!
//! Sequence windows know their size exactly (`min(N, n)`); timestamp
//! windows do not — there the estimators combine the sample with the
//! `swsample-counting` DGIM window-size oracle, exactly the composition the
//! paper's Corollaries 5.2/5.4 presuppose.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregates;
pub mod heavy_hitters;

pub use aggregates::{SeqAggregator, TsAggregator};
pub use heavy_hitters::HeavyHitters;
