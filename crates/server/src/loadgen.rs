//! The load generator: N concurrent connections driving zipf-keyed
//! batches, end-to-end throughput and reply-latency percentiles, and
//! the across-the-wire determinism check.
//!
//! The workload is byte-for-byte the CLI `multi` workload (same
//! [`ZipfGen`] + [`SmallRng`] draw order, same `(key, i/64, i)`
//! shape), routed to connections by `key % connections` so each key's
//! event subsequence rides one connection in order. Per-key sampler
//! state depends only on that key's own batched subsequence, so the
//! server's interleaving of connections is immaterial: an offline
//! engine fed each connection's batches in connection-major order must
//! answer **byte-identically** — [`run`] asserts exactly that when
//! [`LoadgenConfig::verify`] is set. With one connection the server
//! applies precisely `multi`'s batch sequence, which is what the CI
//! smoke diffs ([`LoadgenConfig::render_multi`] reproduces `multi`'s
//! stdout from query replies alone).

use std::io::{self, Write};
use std::time::Instant;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use swsample_core::spec::{Algorithm, SamplerSpec, WindowKind};
use swsample_stream::{MultiStreamEngine, ValueGen, ZipfGen};

use crate::client::Client;
use crate::protocol::{WireEvent, WireSample};

/// What to drive and how hard.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address.
    pub addr: String,
    /// Concurrent connections.
    pub connections: usize,
    /// Zipf key domain (the `multi --keys` flag).
    pub keys: u64,
    /// Total events (the `multi --count` flag).
    pub count: u64,
    /// Zipf skew.
    pub theta: f64,
    /// Workload RNG seed.
    pub workload_seed: u64,
    /// Events per `INGEST` batch.
    pub batch: usize,
    /// After driving, replay the same batches into an offline engine
    /// and assert every touched key's server answer is byte-identical.
    pub verify: bool,
    /// Reproduce the CLI `multi` stdout (top keys, `# keys`, `# memory`
    /// lines) from query replies — only meaningful with 1 connection,
    /// where the server's batch sequence equals `multi`'s.
    pub render_multi: bool,
    /// Hot keys to print in `render_multi` mode.
    pub show: usize,
    /// Send `SHUTDOWN` when done (after queries), asking the server to
    /// drain, fsync, and snapshot.
    pub shutdown_server: bool,
}

impl LoadgenConfig {
    /// Defaults mirroring `multi`'s: 1 connection, 1000 keys, 100k
    /// events, theta 1.1, seed 1, 512-event batches, no verification.
    pub fn new(addr: impl Into<String>) -> LoadgenConfig {
        LoadgenConfig {
            addr: addr.into(),
            connections: 1,
            keys: 1000,
            count: 100_000,
            theta: 1.1,
            workload_seed: 1,
            batch: 512,
            verify: false,
            render_multi: false,
            show: 3,
            shutdown_server: false,
        }
    }
}

/// What the run measured.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Events driven end-to-end.
    pub events_sent: u64,
    /// `INGEST` batches driven (excluding busy retries).
    pub batches_sent: u64,
    /// Wall-clock seconds from first byte to last ack.
    pub seconds: f64,
    /// `events_sent / seconds`.
    pub elems_per_sec: f64,
    /// Median ingest reply latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile ingest reply latency, microseconds.
    pub p99_us: u64,
    /// `BUSY` rejections absorbed by retry (0 = no backpressure hit).
    pub busy_retries: u64,
    /// Keys compared against the offline engine (0 unless `verify`).
    pub verified_keys: u64,
}

/// The workload, pre-partitioned: per-connection batch lists plus the
/// per-key traffic counts (for `render_multi`'s hot-key report).
struct Workload {
    per_conn: Vec<Vec<Vec<WireEvent>>>,
    traffic: Vec<(u64, u64)>,
}

fn generate(cfg: &LoadgenConfig) -> Workload {
    let mut rng = SmallRng::seed_from_u64(cfg.workload_seed);
    let mut zipf = ZipfGen::new(cfg.keys, cfg.theta);
    let mut traffic: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    let conns = cfg.connections.max(1);
    let mut per_conn: Vec<Vec<Vec<WireEvent>>> = vec![Vec::new(); conns];
    let mut open: Vec<Vec<WireEvent>> = vec![Vec::with_capacity(cfg.batch); conns];
    for i in 0..cfg.count {
        let key = zipf.next_value(&mut rng);
        *traffic.entry(key).or_insert(0) += 1;
        let c = (key % conns as u64) as usize;
        open[c].push((key, i / 64, i));
        if open[c].len() >= cfg.batch {
            per_conn[c].push(std::mem::replace(
                &mut open[c],
                Vec::with_capacity(cfg.batch),
            ));
        }
    }
    for (c, chunk) in open.into_iter().enumerate() {
        if !chunk.is_empty() {
            per_conn[c].push(chunk);
        }
    }
    let mut traffic: Vec<(u64, u64)> = traffic.into_iter().collect();
    // `multi`'s deterministic hot-key order: traffic descending, key
    // ascending as the tiebreak.
    traffic.sort_unstable_by_key(|&(key, cnt)| (std::cmp::Reverse(cnt), key));
    Workload { per_conn, traffic }
}

/// `multi`'s memory-line qualifier, reproduced client-side from the
/// template the server handed back in `HELLO_ACK`.
fn memory_note(spec: &SamplerSpec) -> &'static str {
    match (spec.algorithm, spec.window) {
        (Algorithm::Paper, WindowKind::Timestamp(_)) => "deterministic O(k log n)",
        (Algorithm::Paper, _) | (Algorithm::ReservoirL, _) => "deterministic",
        (Algorithm::WindowBuffer, _) => "exact O(n) buffer",
        (Algorithm::Chain, _) | (Algorithm::Priority, _) => "randomized bound",
    }
}

fn render_samples(samples: &Option<Vec<WireSample>>, timestamped: bool) -> String {
    match samples {
        Some(samples) => samples
            .iter()
            .map(|(value, index, timestamp)| {
                if timestamped {
                    format!("{value}@t{timestamp}")
                } else {
                    format!("{value}@{index}")
                }
            })
            .collect::<Vec<_>>()
            .join(" "),
        None => "(window empty)".into(),
    }
}

/// Drive the configured load, then (optionally) verify determinism
/// across the wire and render `multi`-format output to `out`.
pub fn run(cfg: &LoadgenConfig, out: &mut dyn Write) -> io::Result<LoadgenReport> {
    let workload = generate(cfg);
    let started = Instant::now();
    let mut handles = Vec::new();
    for (c, batches) in workload.per_conn.iter().enumerate() {
        let addr = cfg.addr.clone();
        let batches = batches.clone();
        handles.push(
            std::thread::Builder::new()
                .name(format!("swsample-loadgen-{c}"))
                .spawn(move || -> io::Result<(Vec<u64>, u64)> {
                    let mut client = Client::connect(&addr, &format!("loadgen-{c}"))?;
                    let mut latencies = Vec::with_capacity(batches.len());
                    let mut busy = 0u64;
                    for (seq, batch) in batches.iter().enumerate() {
                        let t0 = Instant::now();
                        busy += client.ingest_retry(seq as u64, batch)?;
                        latencies.push(t0.elapsed().as_micros() as u64);
                    }
                    client.bye()?;
                    Ok((latencies, busy))
                })?,
        );
    }
    let mut latencies: Vec<u64> = Vec::new();
    let mut busy_retries = 0u64;
    for handle in handles {
        let (lat, busy) = handle
            .join()
            .map_err(|_| io::Error::other("loadgen connection thread panicked"))??;
        latencies.extend(lat);
        busy_retries += busy;
    }
    let seconds = started.elapsed().as_secs_f64().max(1e-9);
    latencies.sort_unstable();
    let pct = |p: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let at = ((latencies.len() as f64 - 1.0) * p).round() as usize;
        latencies[at]
    };
    let batches_sent = latencies.len() as u64;
    let report = LoadgenReport {
        events_sent: cfg.count,
        batches_sent,
        seconds,
        elems_per_sec: cfg.count as f64 / seconds,
        p50_us: pct(0.50),
        p99_us: pct(0.99),
        busy_retries,
        verified_keys: 0,
    };
    let mut report = report;

    // Every ack is in hand, so the server has applied everything;
    // queries from here are stable.
    let mut client = Client::connect(&cfg.addr, "loadgen-query")?;
    let template: SamplerSpec = client
        .template()
        .parse()
        .map_err(|e| io::Error::other(format!("server template unparseable: {e}")))?;
    let timestamped = matches!(template.window, WindowKind::Timestamp(_));

    if cfg.verify {
        // The offline reference: same batches, connection-major order.
        // Per-key state folds over that key's own subsequence alone, so
        // any server-side interleaving of connections must agree.
        let mut offline: MultiStreamEngine<u64, u64> = MultiStreamEngine::new(template.clone())
            .map_err(|e| io::Error::other(e.to_string()))?;
        for batches in &workload.per_conn {
            for batch in batches {
                offline.ingest(batch);
            }
        }
        for &(key, _) in &workload.traffic {
            let expect: Option<Vec<WireSample>> = offline.sample_k(&key).map(|samples| {
                samples
                    .iter()
                    .map(|s| (*s.value(), s.index(), s.timestamp()))
                    .collect()
            });
            let got = client.query(key)?;
            if got != expect {
                return Err(io::Error::other(format!(
                    "determinism violation at key {key}: server {got:?}, offline {expect:?}"
                )));
            }
            report.verified_keys += 1;
        }
    }

    if cfg.render_multi {
        let stats = client.stats()?;
        for &(key, cnt) in workload.traffic.iter().take(cfg.show) {
            let rendered = render_samples(&client.query(key)?, timestamped);
            writeln!(out, "key {key}\t{cnt} arrivals\t{rendered}")?;
        }
        writeln!(
            out,
            "# keys: {}/{} materialized across {} shards",
            stats.engine.keys, cfg.keys, stats.engine.shards
        )?;
        writeln!(
            out,
            "# memory: fleet {} words, max per key {} words ({})",
            stats.engine.memory_words,
            stats.engine.max_key_words,
            memory_note(&template)
        )?;
    }

    if cfg.shutdown_server {
        client.shutdown_server()?;
    } else {
        client.bye()?;
    }
    Ok(report)
}
