//! Sample-based windowed aggregates.
//!
//! Everything here is estimated from a without-replacement `k`-sample of
//! the window (Theorems 2.2 / 4.4): means and quantiles come straight from
//! the sample; sums additionally need the window size — exact for sequence
//! windows, `(1±ε)`-approximate via DGIM for timestamp windows.

use rand::Rng;
use swsample_core::seq::SeqSamplerWor;
use swsample_core::ts::TsSamplerWor;
use swsample_core::{MemoryWords, WindowSampler};
use swsample_counting::WindowCounter;

/// A snapshot of sample-based aggregate estimates over the active window.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateEstimate {
    /// Estimated (or exact, for sequence windows) number of active elements.
    pub count: f64,
    /// Sample mean of the window values.
    pub mean: f64,
    /// `count · mean`.
    pub sum: f64,
    /// Smallest sampled value.
    pub min_seen: u64,
    /// Largest sampled value.
    pub max_seen: u64,
}

/// Compute the estimate from sampled values and a window-size figure.
fn estimate_from(values: &[u64], count: f64) -> AggregateEstimate {
    debug_assert!(!values.is_empty());
    let sum_sample: u64 = values.iter().sum();
    let mean = sum_sample as f64 / values.len() as f64;
    AggregateEstimate {
        count,
        mean,
        sum: mean * count,
        min_seen: *values.iter().min().expect("nonempty"),
        max_seen: *values.iter().max().expect("nonempty"),
    }
}

/// The `q`-quantile (`0 ≤ q ≤ 1`) of a sample, by sorting — the standard
/// sample-quantile estimator whose rank error is `O(n/√k)` w.h.p.
fn sample_quantile(values: &[u64], q: f64) -> u64 {
    debug_assert!(!values.is_empty());
    assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let pos = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[pos]
}

/// Windowed aggregates over the last `n` arrivals (sequence discipline).
///
/// ```
/// use swsample_query::SeqAggregator;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut agg = SeqAggregator::new(100, 32, SmallRng::seed_from_u64(4));
/// for i in 0..1_000u64 {
///     agg.insert(i % 10);
/// }
/// let est = agg.estimate().unwrap();
/// assert_eq!(est.count, 100.0);                   // exact for seq windows
/// assert!((est.mean - 4.5).abs() < 2.0);          // sample mean near 4.5
/// assert!(agg.quantile(1.0).unwrap() <= 9);
/// ```
#[derive(Debug, Clone)]
pub struct SeqAggregator<R> {
    sampler: SeqSamplerWor<u64, R>,
}

impl<R: Rng> SeqAggregator<R> {
    /// Aggregator over the last `n` arrivals using a `k`-sample.
    pub fn new(n: u64, k: usize, rng: R) -> Self {
        Self {
            sampler: SeqSamplerWor::new(n, k, rng),
        }
    }

    /// Feed the next arrival.
    pub fn insert(&mut self, value: u64) {
        self.sampler.insert(value);
    }

    /// Exact number of active elements.
    pub fn count(&self) -> u64 {
        self.sampler.len_seen().min(self.sampler.window())
    }

    /// Current aggregate estimates; `None` before any arrival.
    pub fn estimate(&mut self) -> Option<AggregateEstimate> {
        let count = self.count() as f64;
        let values: Vec<u64> = self
            .sampler
            .sample_k()?
            .into_iter()
            .map(|s| s.into_value())
            .collect();
        Some(estimate_from(&values, count))
    }

    /// Sample `q`-quantile of the window; `None` before any arrival.
    pub fn quantile(&mut self, q: f64) -> Option<u64> {
        let values: Vec<u64> = self
            .sampler
            .sample_k()?
            .into_iter()
            .map(|s| s.into_value())
            .collect();
        Some(sample_quantile(&values, q))
    }

    /// Estimated fraction of window elements satisfying `pred`.
    pub fn share(&mut self, pred: impl Fn(&u64) -> bool) -> Option<f64> {
        let sample = self.sampler.sample_k()?;
        let hits = sample.iter().filter(|s| pred(s.value())).count();
        Some(hits as f64 / sample.len() as f64)
    }
}

impl<R> MemoryWords for SeqAggregator<R> {
    fn memory_words(&self) -> usize {
        self.sampler.memory_words()
    }
}

/// Windowed aggregates over the last `t0` ticks (timestamp discipline):
/// a without-replacement sampler (Theorem 4.4) plus a DGIM counter as the
/// window-size oracle.
#[derive(Debug, Clone)]
pub struct TsAggregator<R> {
    sampler: TsSamplerWor<u64, R>,
    counter: WindowCounter,
}

impl<R: Rng> TsAggregator<R> {
    /// Aggregator over the last `t0` ticks with a `k`-sample and a
    /// `(1±epsilon)` window-size counter.
    pub fn new(t0: u64, k: usize, epsilon: f64, rng: R) -> Self {
        Self {
            sampler: TsSamplerWor::new(t0, k, rng),
            counter: WindowCounter::with_epsilon(t0, epsilon),
        }
    }

    /// Advance the shared clock.
    pub fn advance_time(&mut self, now: u64) {
        self.sampler.advance_time(now);
        self.counter.advance_time(now);
    }

    /// Feed the next arrival at the current tick.
    pub fn insert(&mut self, value: u64) {
        self.sampler.insert(value);
        self.counter.insert();
    }

    /// `(1±ε)` estimate of the number of active elements.
    pub fn count_estimate(&self) -> u64 {
        self.counter.estimate()
    }

    /// Current aggregate estimates; `None` when the window is empty.
    pub fn estimate(&mut self) -> Option<AggregateEstimate> {
        let values: Vec<u64> = self
            .sampler
            .sample_k()?
            .into_iter()
            .map(|s| s.into_value())
            .collect();
        Some(estimate_from(&values, self.counter.estimate() as f64))
    }

    /// Sample `q`-quantile of the window; `None` when the window is empty.
    pub fn quantile(&mut self, q: f64) -> Option<u64> {
        let values: Vec<u64> = self
            .sampler
            .sample_k()?
            .into_iter()
            .map(|s| s.into_value())
            .collect();
        Some(sample_quantile(&values, q))
    }

    /// Estimated fraction of window elements satisfying `pred`.
    pub fn share(&mut self, pred: impl Fn(&u64) -> bool) -> Option<f64> {
        let sample = self.sampler.sample_k()?;
        let hits = sample.iter().filter(|s| pred(s.value())).count();
        Some(hits as f64 / sample.len() as f64)
    }
}

impl<R> MemoryWords for TsAggregator<R> {
    fn memory_words(&self) -> usize {
        self.sampler.memory_words() + self.counter.memory_words()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use swsample_stats::OnlineMoments;

    #[test]
    fn seq_count_is_exact() {
        let mut a = SeqAggregator::new(100, 8, SmallRng::seed_from_u64(1));
        for i in 0..37u64 {
            a.insert(i);
        }
        assert_eq!(a.count(), 37);
        for i in 0..500u64 {
            a.insert(i);
        }
        assert_eq!(a.count(), 100);
    }

    #[test]
    fn seq_mean_converges_to_window_mean() {
        // Window holds values 900..1000: mean 949.5. Average over seeds.
        let mut acc = OnlineMoments::new();
        for seed in 0..100 {
            let mut a = SeqAggregator::new(100, 16, SmallRng::seed_from_u64(seed));
            for i in 0..1000u64 {
                a.insert(i);
            }
            acc.push(a.estimate().expect("nonempty").mean);
        }
        assert!(
            (acc.mean() - 949.5).abs() < 5.0,
            "mean of means {}",
            acc.mean()
        );
    }

    #[test]
    fn seq_sum_estimates_window_sum() {
        let mut acc = OnlineMoments::new();
        for seed in 0..100 {
            let mut a = SeqAggregator::new(50, 10, SmallRng::seed_from_u64(seed));
            for i in 0..200u64 {
                a.insert(i % 7);
            }
            acc.push(a.estimate().expect("nonempty").sum);
        }
        // Window = last 50 of i%7: values cycle; exact sum:
        let exact: u64 = (150..200u64).map(|i| i % 7).sum();
        assert!(
            (acc.mean() - exact as f64).abs() < 0.15 * exact as f64,
            "sum of means {} vs exact {exact}",
            acc.mean()
        );
    }

    #[test]
    fn seq_quantile_near_true_quantile() {
        let mut acc = OnlineMoments::new();
        for seed in 0..60 {
            let mut a = SeqAggregator::new(1000, 64, SmallRng::seed_from_u64(seed));
            for i in 0..5000u64 {
                a.insert(i % 1000);
            }
            acc.push(a.quantile(0.5).expect("nonempty") as f64);
        }
        // True median of 0..1000 is ~500; sample median concentrated around it.
        assert!(
            (acc.mean() - 500.0).abs() < 60.0,
            "median of medians {}",
            acc.mean()
        );
    }

    #[test]
    fn seq_share_estimates_predicate_fraction() {
        let mut acc = OnlineMoments::new();
        for seed in 0..100 {
            let mut a = SeqAggregator::new(100, 20, SmallRng::seed_from_u64(seed));
            for i in 0..400u64 {
                a.insert(i % 10);
            }
            acc.push(a.share(|&v| v < 3).expect("nonempty"));
        }
        assert!((acc.mean() - 0.3).abs() < 0.05, "share {}", acc.mean());
    }

    #[test]
    fn ts_aggregator_combines_counter_and_sampler() {
        let mut a = TsAggregator::new(16, 8, 0.1, SmallRng::seed_from_u64(2));
        for tick in 0..100u64 {
            a.advance_time(tick);
            a.insert(tick % 5);
            a.insert(tick % 5 + 10);
        }
        // 16 ticks × 2 arrivals = 32 active.
        let est = a.estimate().expect("nonempty");
        assert!(
            (est.count - 32.0).abs() <= 0.1 * 32.0 + 1.0,
            "count {}",
            est.count
        );
        assert!(est.mean > 0.0 && est.sum > 0.0);
    }

    #[test]
    fn ts_empty_window_returns_none() {
        let mut a = TsAggregator::new(4, 3, 0.2, SmallRng::seed_from_u64(3));
        assert!(a.estimate().is_none());
        a.advance_time(0);
        a.insert(5);
        a.advance_time(100);
        assert!(a.estimate().is_none());
        assert_eq!(a.count_estimate(), 0);
    }

    #[test]
    fn quantile_bounds_checked() {
        let vals = [5u64, 1, 9, 3];
        assert_eq!(sample_quantile(&vals, 0.0), 1);
        assert_eq!(sample_quantile(&vals, 1.0), 9);
        // Even-length sample: position 0.5·3 = 1.5 rounds away from zero.
        assert_eq!(sample_quantile(&vals, 0.5), 5);
    }

    #[test]
    #[should_panic]
    fn quantile_rejects_out_of_range() {
        sample_quantile(&[1], 1.5);
    }

    #[test]
    fn memory_stays_sublinear() {
        let mut a = TsAggregator::new(1024, 8, 0.1, SmallRng::seed_from_u64(4));
        for tick in 0..4096u64 {
            a.advance_time(tick);
            for _ in 0..4 {
                a.insert(tick);
            }
        }
        // Window holds 4096 elements of 3 words if buffered; the aggregator
        // must be far below that.
        assert!(a.memory_words() < 4096, "memory {}", a.memory_words());
    }
}
