//! Simple fixed-bin counting histogram used by tests and experiments.

/// A counting histogram over `u64` categories `0..bins`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    out_of_range: u64,
}

impl Histogram {
    /// New histogram with `bins` categories, all zero.
    pub fn new(bins: usize) -> Self {
        assert!(bins > 0, "Histogram::new: zero bins");
        Self {
            counts: vec![0; bins],
            out_of_range: 0,
        }
    }

    /// Record one observation of category `i`; out-of-range observations are
    /// tallied separately (they usually indicate a bug in the caller, so
    /// they are exposed via [`Histogram::out_of_range`]).
    pub fn record(&mut self, i: u64) {
        match self.counts.get_mut(i as usize) {
            Some(c) => *c += 1,
            None => self.out_of_range += 1,
        }
    }

    /// Number of categories.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Count in category `i`.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// All per-category counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total recorded in-range observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Observations that fell outside `0..bins`.
    pub fn out_of_range(&self) -> u64 {
        self.out_of_range
    }

    /// Fraction of observations in category `i` (0 if nothing recorded).
    pub fn fraction(&self, i: usize) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.counts[i] as f64 / t as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_totals() {
        let mut h = Histogram::new(4);
        for i in 0..10 {
            h.record(i % 4);
        }
        assert_eq!(h.total(), 10);
        assert_eq!(h.count(0), 3);
        assert_eq!(h.count(1), 3);
        assert_eq!(h.count(2), 2);
        assert_eq!(h.count(3), 2);
        assert_eq!(h.out_of_range(), 0);
    }

    #[test]
    fn out_of_range_tracked_separately() {
        let mut h = Histogram::new(2);
        h.record(0);
        h.record(5);
        assert_eq!(h.total(), 1);
        assert_eq!(h.out_of_range(), 1);
    }

    #[test]
    fn fractions() {
        let mut h = Histogram::new(2);
        assert_eq!(h.fraction(0), 0.0);
        h.record(0);
        h.record(0);
        h.record(1);
        assert!((h.fraction(0) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn zero_bins_rejected() {
        Histogram::new(0);
    }
}
