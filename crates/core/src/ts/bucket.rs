//! Bucket structures `BS(x, y)` — the atoms of the covering decomposition.

use crate::memory::MemoryWords;
use crate::rngutil::BitSource;
use crate::sample::Sample;
use rand::Rng;

/// The paper's bucket structure (§3.1):
/// `BS(x, y) = { p_x, x, y, T(p_x), R_{x,y}, Q_{x,y}, r, q }`.
///
/// Covers the index range `[a, b)` (the paper's `B(x, y)` holds elements
/// `p_x .. p_{y−1}`). `r` and `q` of the paper (the indexes of the picked
/// samples) live inside the [`Sample`] records; `T(p_x)` is `ts_first`. The
/// stored first element `p_x` of the paper is only ever used through its
/// timestamp, so only the timestamp is kept — one word fewer, same
/// asymptotics, and the word accounting below matches the struct exactly.
#[derive(Debug, Clone)]
pub(crate) struct BucketStruct<T, S = ()> {
    /// First covered index (`x`).
    pub a: u64,
    /// One past the last covered index (`y`).
    pub b: u64,
    /// Timestamp of the first covered element `T(p_a)`.
    pub ts_first: u64,
    /// Uniform sample of the covered range — the output sample.
    pub r: Sample<T>,
    /// Tracker statistic riding along with `r` (suffix statistic from the
    /// sampled position; `()` when tracking is unused).
    pub r_stat: S,
    /// Second, independent uniform sample — consumed by the implicit-event
    /// generator (Lemma 3.6).
    pub q: Sample<T>,
}

impl<T: Clone> BucketStruct<T, ()> {
    /// Width-1 bucket holding exactly the element `item` — `BS(b, b+1)`,
    /// without a tracker statistic.
    pub fn singleton(item: Sample<T>) -> Self {
        Self::singleton_with_stat(item, ())
    }
}

impl<T: Clone, S: Clone> BucketStruct<T, S> {
    /// Width-1 bucket holding exactly the element `item` — `BS(b, b+1)` —
    /// carrying the tracker statistic `stat` for its `R` sample.
    pub fn singleton_with_stat(item: Sample<T>, stat: S) -> Self {
        let idx = item.index();
        let ts = item.timestamp();
        Self {
            a: idx,
            b: idx + 1,
            ts_first: ts,
            r: item.clone(),
            r_stat: stat,
            q: item,
        }
    }

    /// Number of covered elements.
    pub fn width(&self) -> u64 {
        self.b - self.a
    }

    /// Merge with the adjacent right neighbour of equal width (the `Incr`
    /// union step): each of the merged `R`, `Q` is taken from the left or
    /// right bucket with probability 1/2, independently, preserving both
    /// uniformity and the R/Q independence. The two fair coins come from a
    /// caller-held [`BitSource`], so a merge costs 2 *bits* instead of 2
    /// RNG words — one `next_u64` services 32 merges.
    pub fn merge_right<R: Rng>(
        &mut self,
        right: BucketStruct<T, S>,
        rng: &mut R,
        bits: &mut BitSource,
    ) {
        debug_assert_eq!(self.b, right.a, "merge of non-adjacent buckets");
        debug_assert_eq!(
            self.width(),
            right.width(),
            "merge of unequal-width buckets"
        );
        if bits.bit(rng) {
            self.r = right.r;
            self.r_stat = right.r_stat;
        }
        if bits.bit(rng) {
            self.q = right.q;
        }
        self.b = right.b;
    }
}

impl<T, S> MemoryWords for BucketStruct<T, S> {
    fn memory_words(&self) -> usize {
        // a, b, ts_first + two samples of 3 words each.
        3 + 2 * Sample::<T>::WORDS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn item(i: u64) -> Sample<u64> {
        Sample::new(i * 10, i, i)
    }

    #[test]
    fn singleton_covers_one_index() {
        let b = BucketStruct::singleton(item(5));
        assert_eq!((b.a, b.b), (5, 6));
        assert_eq!(b.width(), 1);
        assert_eq!(b.ts_first, 5);
        assert_eq!(b.r.index(), 5);
        assert_eq!(b.q.index(), 5);
    }

    #[test]
    fn merge_right_combines_ranges() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut bits = BitSource::new();
        let mut left = BucketStruct::singleton(item(0));
        let right = BucketStruct::singleton(item(1));
        left.merge_right(right, &mut rng, &mut bits);
        assert_eq!((left.a, left.b), (0, 2));
        assert_eq!(left.ts_first, 0);
        assert!(left.r.index() <= 1);
    }

    #[test]
    fn merge_picks_each_side_half_the_time() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut bits = BitSource::new();
        let trials = 20_000;
        let mut left_wins = 0u64;
        for _ in 0..trials {
            let mut l = BucketStruct::singleton(item(0));
            let r = BucketStruct::singleton(item(1));
            l.merge_right(r, &mut rng, &mut bits);
            if l.r.index() == 0 {
                left_wins += 1;
            }
        }
        let rate = left_wins as f64 / trials as f64;
        assert!((rate - 0.5).abs() < 0.02, "rate = {rate}");
    }

    #[test]
    fn r_and_q_merge_independently() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut bits = BitSource::new();
        let trials = 20_000;
        let mut joint = [[0u64; 2]; 2];
        for _ in 0..trials {
            let mut l = BucketStruct::singleton(item(0));
            let r = BucketStruct::singleton(item(1));
            l.merge_right(r, &mut rng, &mut bits);
            joint[l.r.index() as usize][l.q.index() as usize] += 1;
        }
        // Each of the 4 cells should hold about a quarter.
        for row in &joint {
            for &c in row {
                let f = c as f64 / trials as f64;
                assert!((f - 0.25).abs() < 0.02, "cell fraction {f}");
            }
        }
    }

    #[test]
    #[should_panic]
    fn merge_rejects_unequal_widths() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut bits = BitSource::new();
        let mut wide = BucketStruct::singleton(item(0));
        wide.merge_right(BucketStruct::singleton(item(1)), &mut rng, &mut bits);
        // width-2 merged with width-1 must panic (debug assertions on).
        wide.merge_right(BucketStruct::singleton(item(2)), &mut rng, &mut bits);
    }
}
