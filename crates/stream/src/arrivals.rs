//! Arrival processes for timestamp-based windows.
//!
//! A timestamp-based stream is a sequence of `(value, timestamp)` events
//! with non-decreasing timestamps; possibly many events per tick ("bursts",
//! §1: *"where many items can arrive in bursts at a single step"*). The
//! three processes here cover the paper's experimental needs:
//!
//! * [`SteadyArrivals`] — exactly one item per tick; the timestamp model
//!   degenerates to the sequence model, a useful cross-check.
//! * [`BurstyArrivals`] — a random burst of `0..=max_burst` items per tick;
//!   the "networking" workload of the introduction.
//! * [`AdversarialStream`] — the Lemma 3.10 lower-bound schedule:
//!   `2^{2t₀−i}` items at tick `i ≤ 2t₀`, then one per tick. Under this
//!   schedule priority-style samplers are forced to hold `Ω(log n)`
//!   elements; experiment E4 replays it.

use crate::values::ValueGen;
use rand::Rng;

/// One stream event: a value arriving at a tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedEvent {
    /// The element value.
    pub value: u64,
    /// Arrival tick.
    pub timestamp: u64,
}

/// One item per tick.
#[derive(Debug, Clone)]
pub struct SteadyArrivals<G> {
    values: G,
    tick: u64,
}

impl<G: ValueGen> SteadyArrivals<G> {
    /// New steady arrival process starting at tick 0.
    pub fn new(values: G) -> Self {
        Self { values, tick: 0 }
    }

    /// Produce the next event.
    pub fn next_event<R: Rng>(&mut self, rng: &mut R) -> TimedEvent {
        let ev = TimedEvent {
            value: self.values.next_value(rng),
            timestamp: self.tick,
        };
        self.tick += 1;
        ev
    }
}

/// A random number of items (possibly zero) per tick, up to `max_burst`.
#[derive(Debug, Clone)]
pub struct BurstyArrivals<G> {
    values: G,
    max_burst: u64,
    tick: u64,
    remaining_in_tick: u64,
}

impl<G: ValueGen> BurstyArrivals<G> {
    /// New bursty process; each tick carries `Uniform{0..=max_burst}` items.
    pub fn new(values: G, max_burst: u64) -> Self {
        assert!(max_burst > 0, "BurstyArrivals: max_burst must be positive");
        Self {
            values,
            max_burst,
            tick: 0,
            remaining_in_tick: 0,
        }
    }

    /// Produce the next event; advances the tick through empty bursts.
    pub fn next_event<R: Rng>(&mut self, rng: &mut R) -> TimedEvent {
        while self.remaining_in_tick == 0 {
            self.remaining_in_tick = rng.gen_range(0..=self.max_burst);
            if self.remaining_in_tick == 0 {
                self.tick += 1;
            }
        }
        self.remaining_in_tick -= 1;
        let ev = TimedEvent {
            value: self.values.next_value(rng),
            timestamp: self.tick,
        };
        if self.remaining_in_tick == 0 {
            self.tick += 1;
        }
        ev
    }

    /// Current clock tick (timestamp the *next* event will not precede).
    pub fn now(&self) -> u64 {
        self.tick
    }
}

/// The Lemma 3.10 adversarial schedule.
///
/// For tick `i ∈ 0..=2t₀` the stream delivers `2^{2t₀−i}` items; afterwards
/// one item per tick. With window width `t₀`, around time `t₀` the number of
/// active elements is `n ≥ 2^{t₀}`, and any sampler must remember `Ω(t₀) =
/// Ω(log n)` distinct elements with positive probability (Lemma 3.10).
///
/// `t0` must be small (≤ ~20) or the early bursts are astronomically large;
/// [`AdversarialStream::burst_size`] saturates at `max_burst_cap` to keep
/// replays tractable while preserving the geometric decay that drives the
/// bound.
#[derive(Debug, Clone)]
pub struct AdversarialStream<G> {
    values: G,
    t0: u64,
    max_burst_cap: u64,
    tick: u64,
    emitted_in_tick: u64,
}

impl<G: ValueGen> AdversarialStream<G> {
    /// New adversarial schedule for window width `t0`, with per-tick burst
    /// sizes capped at `max_burst_cap` (use `u64::MAX` for the uncapped
    /// schedule of the proof).
    pub fn new(values: G, t0: u64, max_burst_cap: u64) -> Self {
        assert!(t0 > 0, "AdversarialStream: t0 must be positive");
        assert!(max_burst_cap > 0, "AdversarialStream: cap must be positive");
        Self {
            values,
            t0,
            max_burst_cap,
            tick: 0,
            emitted_in_tick: 0,
        }
    }

    /// Scheduled burst size at tick `i`: `min(2^{2t₀−i}, cap)` for
    /// `i ≤ 2t₀`, else 1.
    pub fn burst_size(&self, i: u64) -> u64 {
        if i <= 2 * self.t0 {
            let exp = 2 * self.t0 - i;
            if exp >= 63 {
                self.max_burst_cap
            } else {
                (1u64 << exp).min(self.max_burst_cap)
            }
        } else {
            1
        }
    }

    /// Produce the next event.
    pub fn next_event<R: Rng>(&mut self, rng: &mut R) -> TimedEvent {
        while self.emitted_in_tick >= self.burst_size(self.tick) {
            self.tick += 1;
            self.emitted_in_tick = 0;
        }
        self.emitted_in_tick += 1;
        TimedEvent {
            value: self.values.next_value(rng),
            timestamp: self.tick,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::values::{RoundRobinGen, UniformGen};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn steady_ticks_increment() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut s = SteadyArrivals::new(RoundRobinGen::new(5));
        for i in 0..10 {
            let ev = s.next_event(&mut rng);
            assert_eq!(ev.timestamp, i);
        }
    }

    #[test]
    fn bursty_timestamps_nondecreasing() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut s = BurstyArrivals::new(UniformGen::new(100), 7);
        let mut last = 0;
        for _ in 0..1000 {
            let ev = s.next_event(&mut rng);
            assert!(ev.timestamp >= last);
            last = ev.timestamp;
        }
    }

    #[test]
    fn bursty_produces_bursts() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut s = BurstyArrivals::new(UniformGen::new(100), 5);
        let mut per_tick = std::collections::HashMap::new();
        for _ in 0..2000 {
            let ev = s.next_event(&mut rng);
            *per_tick.entry(ev.timestamp).or_insert(0u64) += 1;
        }
        assert!(per_tick.values().any(|&c| c > 1), "no bursts observed");
        assert!(per_tick.values().all(|&c| c <= 5));
    }

    #[test]
    fn adversarial_burst_sizes_follow_schedule() {
        let s = AdversarialStream::new(RoundRobinGen::new(2), 3, u64::MAX);
        // t0 = 3: tick 0 carries 2^6 = 64, tick 6 carries 2^0 = 1, tick 7 -> 1.
        assert_eq!(s.burst_size(0), 64);
        assert_eq!(s.burst_size(1), 32);
        assert_eq!(s.burst_size(6), 1);
        assert_eq!(s.burst_size(7), 1);
        assert_eq!(s.burst_size(100), 1);
    }

    #[test]
    fn adversarial_caps_bursts() {
        let s = AdversarialStream::new(RoundRobinGen::new(2), 30, 1000);
        assert_eq!(s.burst_size(0), 1000);
        assert_eq!(s.burst_size(59), 2);
        assert_eq!(s.burst_size(61), 1);
    }

    #[test]
    fn adversarial_event_counts_per_tick() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut s = AdversarialStream::new(RoundRobinGen::new(9), 2, u64::MAX);
        // t0 = 2: ticks 0..=4 carry 16,8,4,2,1 items = 31 total; tick 5 -> 1.
        let mut counts = std::collections::HashMap::new();
        for _ in 0..33 {
            let ev = s.next_event(&mut rng);
            *counts.entry(ev.timestamp).or_insert(0u64) += 1;
        }
        assert_eq!(counts[&0], 16);
        assert_eq!(counts[&1], 8);
        assert_eq!(counts[&4], 1);
        assert_eq!(counts[&5], 1);
        assert_eq!(counts[&6], 1);
    }

    #[test]
    fn adversarial_overflow_guard() {
        // exp >= 63 must not shift-overflow.
        let s = AdversarialStream::new(RoundRobinGen::new(2), 40, 500);
        assert_eq!(s.burst_size(0), 500);
    }
}
