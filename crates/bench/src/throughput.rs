//! The seeded ingestion-throughput suite behind `BENCH_throughput.json` —
//! the repo's machine-readable perf trajectory (one committed artifact per
//! PR, produced by the `bench_throughput` binary).
//!
//! Every case drives one sampler configuration over a fixed seeded stream
//! through the batched ingestion API, measuring wall-clock elements/sec
//! and — via [`swsample_core::rng::CountingRng`] — the *exact* number of
//! RNG words consumed. The draw counts are what make the skip-ahead claims
//! auditable: `seq_wr_skip` at n = 10⁵ draws `O(k log n / n)` words per
//! element where `seq_wr_naive` draws `k`, and the JSON records both.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Instant;
use swsample_baselines::{
    ChainSampler, NaiveStreamReservoir, PrioritySampler, PriorityTopK, StreamReservoir,
    WindowBuffer,
};
use swsample_core::rng::CountingRng;
use swsample_core::seq::{SeqSamplerWor, SeqSamplerWr};
use swsample_core::ts::{TsSamplerWor, TsSamplerWr};
use swsample_core::WindowSampler;
use swsample_stream::WindowSpec;

use crate::json;

/// One measured configuration.
#[derive(Debug, Clone)]
pub struct Row {
    /// Sampler identifier (stable across PRs — the trajectory key).
    pub sampler: &'static str,
    /// `"seq"` or `"ts"`.
    pub discipline: &'static str,
    /// Number of samples maintained.
    pub k: usize,
    /// Window size (sequence length or active-set size for ts cases);
    /// 0 for whole-stream samplers, which have no window.
    pub n: u64,
    /// Stream length driven through the sampler.
    pub elements: u64,
    /// Wall-clock ingestion time.
    pub seconds: f64,
    /// `elements / seconds`.
    pub elems_per_sec: f64,
    /// Exact RNG words consumed (CountingRng).
    pub rng_draws: u64,
}

/// One measured multi-stream (keyed fleet) configuration.
#[derive(Debug, Clone)]
pub struct MultiRow {
    /// Fleet backend the engine resolved (`"erased"` or `"soa"`).
    pub backend: &'static str,
    /// Key-domain size (number of logical streams).
    pub keys: u64,
    /// Per-key samples maintained.
    pub k: usize,
    /// Engine shard count.
    pub shards: usize,
    /// Keyed events driven through `MultiStreamEngine::ingest`.
    pub elements: u64,
    /// Wall-clock ingestion time of the first (cold) pass.
    pub seconds: f64,
    /// Cold-pass `elements / seconds`: fleet construction, registry
    /// growth, and the accept-dense first arrivals all included — the
    /// schema-v3-compatible figure.
    pub elems_per_sec: f64,
    /// Warm-fleet `elements / seconds`: the same event stream replayed
    /// after the cold pass, so keys are materialized and the hot keys
    /// sample in steady state. This is the regime where per-element
    /// fleet overhead (pointer chasing vs dense slabs) dominates, and
    /// the one the SoA backend targets.
    pub sustained_elems_per_sec: f64,
    /// Keys that actually materialized a sampler.
    pub keys_touched: usize,
    /// Fleet-wide footprint in words.
    pub memory_words: usize,
    /// Hottest single key's footprint in words (the paper's per-window
    /// deterministic cap applies here).
    pub max_key_words: usize,
}

/// One measured parallel-ingestion (worker pool) configuration.
#[derive(Debug, Clone)]
pub struct ParallelRow {
    /// Fleet backend the engine resolved (`"erased"` or `"soa"`).
    pub backend: &'static str,
    /// Key-domain size (number of logical streams).
    pub keys: u64,
    /// Per-key samples maintained.
    pub k: usize,
    /// Engine shard count.
    pub shards: usize,
    /// Worker threads (`1` = the inline serial path).
    pub threads: usize,
    /// Chunk length fed to `ingest_parallel` (larger than the serial
    /// section's: each chunk amortizes one partition + pool round trip).
    pub batch: usize,
    /// Keyed events driven through `MultiStreamEngine::ingest_parallel`.
    pub elements: u64,
    /// Wall-clock ingestion time (including the final `flush()` — the
    /// double-buffered pool may still be draining the last epoch when
    /// `ingest_parallel` returns).
    pub seconds: f64,
    /// Fleet-wide `elements / seconds`.
    pub elems_per_sec: f64,
    /// Logical cores on the measuring host, copied per row so thread
    /// rows are never judged against parallelism the machine lacks.
    pub cores: usize,
    /// Shard-run units executed across all epochs of the fastest rep.
    pub units: u64,
    /// Units claimed by a non-home worker (the steal count) in the
    /// fastest rep. 0 at `threads = 1` (inline path, no pool).
    pub steals: u64,
    /// Max/mean busy-time ratio across workers in the fastest rep;
    /// 1.0 = perfectly balanced (or serial).
    pub imbalance: f64,
}

/// One measured durable-pipeline configuration: the multi-stream fleet
/// workload of [`run_multi`] driven through [`swsample_durable::DurableEngine`]
/// (or the plain engine for the `wal-off` baseline), plus the wall-clock
/// cost of recovering the finished directory.
#[derive(Debug, Clone)]
pub struct DurableRow {
    /// `"wal-off"` (plain engine), `"wal-on"` (WAL, no mid-run
    /// snapshots), or `"wal-snap"` (WAL + periodic snapshots).
    pub mode: &'static str,
    /// Key-domain size (number of logical streams).
    pub keys: u64,
    /// Per-key samples maintained.
    pub k: usize,
    /// Engine shard count.
    pub shards: usize,
    /// Snapshot cadence in ingest batches (0 = initial snapshot only).
    pub snapshot_every: u64,
    /// Keyed events driven through the engine.
    pub elements: u64,
    /// Wall-clock ingestion time (best of reps).
    pub seconds: f64,
    /// `elements / seconds`.
    pub elems_per_sec: f64,
    /// Wall-clock time to reopen the finished directory — latest valid
    /// snapshot plus log-tail replay. 0 for `wal-off` (nothing durable
    /// to recover).
    pub recovery_seconds: f64,
}

/// One measured end-to-end serving configuration: the loadgen zipf
/// workload driven through a real loopback TCP [`swsample_server::Server`]
/// (framing, crc, the bounded ingest queue, `ingest_parallel` drain),
/// next to a same-run direct `ingest_parallel` baseline over the
/// identical events — the denominator of the serving-tax gate.
#[derive(Debug, Clone)]
pub struct ServerRow {
    /// Concurrent load-generator connections.
    pub connections: usize,
    /// Key-domain size (number of logical streams).
    pub keys: u64,
    /// Keyed events driven across the wire.
    pub elements: u64,
    /// Wall-clock seconds from first byte to last ack.
    pub seconds: f64,
    /// End-to-end `elements / seconds`.
    pub elems_per_sec: f64,
    /// Median ingest-reply latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile ingest-reply latency, microseconds.
    pub p99_us: u64,
    /// `BUSY` rejections absorbed by client retry (backpressure hits).
    pub busy: u64,
    /// Same-run direct `ingest_parallel` throughput over the identical
    /// workload, no sockets (same template, shards, and threads).
    pub direct_elems_per_sec: f64,
}

/// Suite dimensions; [`params`] builds the standard full/quick shapes.
#[derive(Debug, Clone)]
pub struct Params {
    /// Values of `k` to sweep.
    pub ks: Vec<usize>,
    /// Window sizes to sweep.
    pub ns: Vec<u64>,
    /// Stream length for sequence-window cases.
    pub seq_elements: u64,
    /// Stream length for timestamp-window cases (smaller: every arrival
    /// touches `k` covering decompositions).
    pub ts_elements: u64,
    /// Chunk length fed to `insert_batch`.
    pub chunk: usize,
    /// Key-domain sizes for the multi-stream section.
    pub multi_keys: Vec<u64>,
    /// Keyed events per multi-stream case.
    pub multi_elements: u64,
    /// Per-key `k` for the multi-stream section.
    pub multi_k: usize,
    /// Worker-thread counts for the parallel section.
    pub multi_threads: Vec<usize>,
    /// Chunk length fed to `ingest_parallel` in the parallel section.
    pub parallel_chunk: usize,
    /// Repetitions per parallel configuration; the row keeps the best
    /// (fastest) run. Throughput on a shared host is best-of noise:
    /// scheduler steal only ever *adds* time, so the minimum is the
    /// faithful capability measurement for a gated artifact.
    pub parallel_reps: usize,
    /// Snapshot cadence (in ingest batches) for the durable section's
    /// `wal-snap` mode.
    pub durable_snapshot_every: u64,
    /// Concurrent-connection counts for the end-to-end server section.
    pub server_connections: Vec<usize>,
}

/// The PR-3 committed `multi_stream` baseline at 100k keys, k = 16 —
/// the pre-slab, pre-parallel `HashMap<K, Box<dyn …>>` engine
/// (`BENCH_throughput.json` as of commit 6b5c5b7). `multi_100k_speedup`
/// is measured against this fixed reference so the gate tracks the
/// engine redesign, not run-to-run drift of a moving baseline.
pub const PR3_MULTI_100K_ELEMS_PER_SEC: f64 = 2_744_568.83;

/// The v3 committed `multi_stream` figure at 100k keys, k = 16 — the
/// erased-backend engine after the PR-5 slab registry
/// (`BENCH_throughput.json` as of commit a593bb7). The SoA-backend
/// headline `multi_soa_100k_speedup` is measured against this fixed
/// reference.
///
/// Why the gate is what it is and not more: at 100k zipf keys over 2M
/// events the mean key sees ~24 arrivals, deep inside the accept-dense
/// prefix where each of the `k = 16` paper instances accepts arrival
/// `j` with probability `1/j` — about `k·H(24)/24 ≈ 2.5` acceptances
/// per element, each costing a pinned sequence of `record_skip` RNG
/// draws that is *identical* in both backends (that equality is the
/// bit-identity contract). That RNG work alone exceeds the whole
/// per-element budget a 3× ratio would allow on the baseline host, so
/// no layout change can reach it on this workload; the SoA win shows
/// in the sustained (warm-fleet) figure, where acceptances thin to
/// `k·H(n)/n` per element and per-element state access dominates.
pub const V3_MULTI_100K_ELEMS_PER_SEC: f64 = 5_496_031.64;

/// Hard acceptance bar for [`multi_soa_100k_speedup`]: the SoA
/// backend's sustained 100k-key throughput must beat the committed v3
/// cold figure by this factor. See [`V3_MULTI_100K_ELEMS_PER_SEC`] for
/// why the bar is 1.5× and not the aspirational 3×.
pub const MULTI_SOA_100K_GATE: f64 = 1.5;

/// Hard acceptance bar for [`durable_wal_overhead_100k`]: ingesting
/// through the write-ahead log at 100k keys must retain at least this
/// fraction of the plain engine's throughput. Append-then-apply adds
/// one buffered sequential write (~24 bytes/event) per batch and fsyncs
/// only on segment roll, so the tax is bandwidth, not latency; 0.7×
/// leaves headroom for slow CI disks while still catching an
/// accidental fsync-per-batch or per-event allocation regression.
pub const DURABLE_WAL_100K_GATE: f64 = 0.7;

/// Hard acceptance bar for [`server_e2e_100k_vs_direct`]: the best
/// end-to-end serving throughput at 100k keys (framing + crc + TCP
/// loopback + the bounded queue, measured by the load generator) must
/// retain at least this fraction of the same-run direct
/// `ingest_parallel` rate over the identical events. The wire adds
/// ~26 bytes/event of columnar delta-varint encode/decode plus one
/// crc32 pass each way — bandwidth work, like the WAL tax — so losing
/// more than half of direct throughput means a stall (per-batch sync
/// round trips serializing the pipeline, queue thrash, a blocking
/// writer) rather than honest framing cost.
pub const SERVER_E2E_100K_GATE: f64 = 0.5;

/// Hard acceptance bar for the work-stealing overhead headlines
/// ([`parallel_t8_overhead`] at 1k and 100k keys): running with an
/// 8-thread pool must retain at least this fraction of the serial
/// inline path's throughput *even when the host has one core*. The
/// scheduler's fixed cost per batch is one counting-sort partition and
/// one epoch handshake; 0.9× caps that tax. Unlike the efficiency
/// gate this one is always armed — oversubscription on a small host is
/// exactly where a chatty scheduler would show.
pub const PARALLEL_T8_OVERHEAD_GATE: f64 = 0.9;

/// Hard acceptance bar for [`parallel_t4_efficiency_100k`]: with 4
/// workers on the 100k-key zipf workload, the better backend must beat
/// the serial path by at least this factor. Armed only when
/// `machine.cores > 1` (a single-core host cannot exhibit parallel
/// speedup, only the overhead gate applies there).
pub const PARALLEL_T4_EFFICIENCY_GATE: f64 = 1.5;

/// Host descriptor recorded in the artifact so figures from different
/// machines are never compared as if they were a trajectory.
#[derive(Debug, Clone)]
pub struct Machine {
    /// Logical cores visible to the process.
    pub cores: usize,
    /// CPU model string from `/proc/cpuinfo` (or `"unknown"`).
    pub model: String,
}

/// Probe the host: logical core count and CPU model string.
pub fn machine() -> Machine {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let model = std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|m| m.trim().to_string())
        })
        .unwrap_or_else(|| "unknown".to_string());
    Machine { cores, model }
}

/// The standard suite shapes. `quick` keeps the schema identical but
/// shrinks the sweep so a CI smoke run finishes in seconds; the committed
/// artifact is always produced with `quick = false` (which includes the
/// acceptance configuration k = 64, n = 10⁵).
pub fn params(quick: bool) -> Params {
    if quick {
        Params {
            ks: vec![8],
            ns: vec![10_000],
            seq_elements: 40_000,
            ts_elements: 20_000,
            chunk: 1024,
            multi_keys: vec![1_000],
            multi_elements: 50_000,
            multi_k: 16,
            multi_threads: vec![1, 2],
            parallel_chunk: 2_048,
            parallel_reps: 1,
            durable_snapshot_every: 16,
            server_connections: vec![1, 2],
        }
    } else {
        Params {
            ks: vec![8, 64],
            ns: vec![10_000, 100_000],
            seq_elements: 1_000_000,
            ts_elements: 200_000,
            chunk: 1024,
            multi_keys: vec![1_000, 100_000],
            multi_elements: 2_000_000,
            multi_k: 16,
            multi_threads: vec![1, 2, 4, 8],
            parallel_chunk: 32_768,
            parallel_reps: 5,
            durable_snapshot_every: 512,
            server_connections: vec![1, 8, 64],
        }
    }
}

/// Drive a sequence-window sampler over `elements` consecutive values in
/// `chunk`-sized batches; returns ingestion seconds.
fn drive_seq<S: WindowSampler<u64>>(s: &mut S, elements: u64, chunk: usize) -> f64 {
    let mut buf: Vec<u64> = Vec::with_capacity(chunk);
    let start = Instant::now();
    let mut i = 0u64;
    while i < elements {
        let end = (i + chunk as u64).min(elements);
        buf.clear();
        buf.extend(i..end);
        s.insert_batch(&buf);
        i = end;
    }
    start.elapsed().as_secs_f64()
}

/// Drive a timestamp-window sampler at 4 arrivals/tick through
/// `advance_and_insert`; returns ingestion seconds.
fn drive_ts<S: WindowSampler<u64>>(s: &mut S, elements: u64, per_tick: u64) -> f64 {
    let mut buf: Vec<u64> = Vec::with_capacity(per_tick as usize);
    let start = Instant::now();
    let mut i = 0u64;
    let mut tick = 0u64;
    while i < elements {
        let end = (i + per_tick).min(elements);
        buf.clear();
        buf.extend(i..end);
        tick += 1;
        s.advance_and_insert(tick, &buf);
        i = end;
    }
    start.elapsed().as_secs_f64()
}

/// Run the full suite for the given dimensions; deterministic streams,
/// fresh seeded RNG per case.
pub fn run_with(p: &Params) -> Vec<Row> {
    let mut rows = Vec::new();

    macro_rules! seq_case {
        ($name:literal, $k:expr, $n:expr, $make:expr) => {{
            let (k, n) = ($k, $n);
            let rng = CountingRng::new(SmallRng::seed_from_u64(42));
            let draws = rng.counter();
            #[allow(clippy::redundant_closure_call)]
            let mut s = ($make)(n, k, rng);
            let seconds = drive_seq(&mut s, p.seq_elements, p.chunk);
            drop(s);
            rows.push(Row {
                sampler: $name,
                discipline: "seq",
                k,
                n,
                elements: p.seq_elements,
                seconds,
                elems_per_sec: p.seq_elements as f64 / seconds.max(1e-9),
                rng_draws: draws.words(),
            });
        }};
    }
    macro_rules! ts_case {
        ($name:literal, $k:expr, $n:expr, $make:expr) => {{
            let (k, n) = ($k, $n);
            let rng = CountingRng::new(SmallRng::seed_from_u64(43));
            let draws = rng.counter();
            // 4 arrivals/tick and a window of n/4 ticks keep ≈ n active.
            let t0 = (n / 4).max(1);
            #[allow(clippy::redundant_closure_call)]
            let mut s = ($make)(t0, k, rng);
            let seconds = drive_ts(&mut s, p.ts_elements, 4);
            drop(s);
            rows.push(Row {
                sampler: $name,
                discipline: "ts",
                k,
                n,
                elements: p.ts_elements,
                seconds,
                elems_per_sec: p.ts_elements as f64 / seconds.max(1e-9),
                rng_draws: draws.words(),
            });
        }};
    }

    for &k in &p.ks {
        // Whole-stream reservoirs have no window: one row per k (n = 0),
        // not one per swept window size.
        seq_case!("vitter_l", k, 0, |_n, k, rng| StreamReservoir::new(k, rng));
        seq_case!("vitter_r", k, 0, |_n, k, rng| NaiveStreamReservoir::new(
            k, rng
        ));
        for &n in &p.ns {
            seq_case!("seq_wr_skip", k, n, SeqSamplerWr::new);
            seq_case!("seq_wr_naive", k, n, SeqSamplerWr::naive);
            seq_case!("seq_wor_skip", k, n, SeqSamplerWor::new);
            seq_case!("seq_wor_naive", k, n, SeqSamplerWor::naive);
            seq_case!("chain", k, n, ChainSampler::new);
            seq_case!("window_buffer", k, n, |n, k, rng| WindowBuffer::new(
                WindowSpec::Sequence(n),
                k,
                rng
            ));
            ts_case!("ts_wr", k, n, TsSamplerWr::new);
            ts_case!("ts_wr_indep", k, n, TsSamplerWr::independent);
            ts_case!("ts_wor", k, n, TsSamplerWor::new);
            ts_case!("ts_wor_indep", k, n, TsSamplerWor::independent);
            ts_case!("priority", k, n, PrioritySampler::new);
            ts_case!("priority_topk", k, n, PriorityTopK::new);
        }
    }
    rows
}

/// Run the multi-stream (keyed fleet) section: a zipf-keyed stream over
/// each key-domain size, ingested through `MultiStreamEngine`'s batched
/// grouped path with a paper seq-WR template (k = `multi_k`, n = 1000).
pub fn run_multi(p: &Params) -> Vec<MultiRow> {
    use swsample_core::spec::FleetBackend;
    use swsample_core::SamplerSpec;
    use swsample_stream::{MultiStreamEngine, ValueGen, ZipfGen};

    let mut out = Vec::new();
    for &keys in &p.multi_keys {
        let mut rng = SmallRng::seed_from_u64(44);
        let mut zipf = ZipfGen::new(keys, 1.1);
        // Pre-generate the workload so the clock measures ingestion, not
        // zipf inversion.
        let events: Vec<(u64, u64, u64)> = (0..p.multi_elements)
            .map(|i| (zipf.next_value(&mut rng), i / 64, i))
            .collect();
        // Best-of reps, like the parallel section: identical
        // deterministic runs, so the minimum is the capability
        // measurement and scheduler steal is excluded. Reps are
        // interleaved across backends (rep-outermost) so a multi-second
        // host-noise burst degrades both backends' rep pools equally
        // instead of swallowing one backend's entire block — the
        // soa-vs-erased acceptance ratio divides these two figures.
        let backends = [(FleetBackend::Erased, "erased"), (FleetBackend::Soa, "soa")];
        let mut best = [(f64::INFINITY, f64::INFINITY); 2];
        let mut last: [Option<MultiStreamEngine<u64, u64>>; 2] = [None, None];
        for _ in 0..p.parallel_reps.max(1) {
            for (b, &(backend, _)) in backends.iter().enumerate() {
                let template: SamplerSpec =
                    format!("--window seq --n 1000 --k {} --seed 42", p.multi_k)
                        .parse()
                        .expect("template spec");
                let mut engine: MultiStreamEngine<u64, u64> = MultiStreamEngine::with_backend(
                    template,
                    64,
                    SamplerSpec::build::<u64>,
                    1,
                    backend,
                )
                .expect("engine");
                // Cold pass: fleet construction + accept-dense first
                // arrivals (the schema-v3 figure). Sustained pass: the
                // identical stream replayed into the now-warm fleet.
                let start = Instant::now();
                for chunk in events.chunks(p.chunk) {
                    engine.ingest(chunk);
                }
                best[b].0 = best[b].0.min(start.elapsed().as_secs_f64());
                let start = Instant::now();
                for chunk in events.chunks(p.chunk) {
                    engine.ingest(chunk);
                }
                best[b].1 = best[b].1.min(start.elapsed().as_secs_f64());
                last[b] = Some(engine);
            }
        }
        for (b, &(_, name)) in backends.iter().enumerate() {
            let engine = last[b].take().expect("at least one rep");
            let (cold, sustained) = best[b];
            out.push(MultiRow {
                backend: name,
                keys,
                k: p.multi_k,
                shards: engine.num_shards(),
                elements: p.multi_elements,
                seconds: cold,
                elems_per_sec: p.multi_elements as f64 / cold.max(1e-9),
                sustained_elems_per_sec: p.multi_elements as f64 / sustained.max(1e-9),
                keys_touched: engine.num_keys(),
                memory_words: swsample_core::MemoryWords::memory_words(&engine),
                max_key_words: engine.max_key_memory_words(),
            });
        }
    }
    out
}

/// Run the parallel-scaling section: the same zipf-keyed workload as
/// [`run_multi`], driven through `MultiStreamEngine::ingest_parallel` at
/// each worker-thread count (seq-WR template, k = `multi_k`, n = 1000,
/// 64 shards). Thread count 1 is the inline serial path; per-key output
/// is bit-identical across all rows (asserted in
/// `tests/parallel_engine.rs`), so the rows measure pure scheduling.
pub fn run_parallel(p: &Params) -> Vec<ParallelRow> {
    use swsample_core::spec::FleetBackend;
    use swsample_core::SamplerSpec;
    use swsample_stream::{MultiStreamEngine, ValueGen, ZipfGen};

    let cores = machine().cores;
    let mut out = Vec::new();
    for &keys in &p.multi_keys {
        // Pre-generate once per key domain; every thread count replays
        // the identical workload.
        let mut rng = SmallRng::seed_from_u64(44);
        let mut zipf = ZipfGen::new(keys, 1.1);
        let events: Vec<(u64, u64, u64)> = (0..p.multi_elements)
            .map(|i| (zipf.next_value(&mut rng), i / 64, i))
            .collect();
        // Best of `parallel_reps` identical runs per configuration
        // (fresh engine each time — the workload and results are
        // deterministic, only host scheduling noise varies). The
        // scheduler counters travel with the fastest rep. Two
        // noise-robustness measures, because the t8/t1 overhead gate
        // divides two of these figures so per-row noise compounds:
        // reps are interleaved across the whole backend x threads grid
        // (rep-outermost) so a multi-second host-noise burst degrades
        // every configuration's rep pool instead of swallowing one
        // configuration's contiguous block, and small key domains —
        // which finish in milliseconds and can lose every rep to a
        // single descheduling blip — get 3x the reps.
        let mut configs = Vec::new();
        for &(backend, name) in &[(FleetBackend::Erased, "erased"), (FleetBackend::Soa, "soa")] {
            for &threads in &p.multi_threads {
                configs.push((backend, name, threads));
            }
        }
        let reps = p.parallel_reps.max(1) * if keys < 10_000 { 3 } else { 1 };
        let mut best: Vec<(f64, Option<swsample_stream::ParallelStats>)> =
            vec![(f64::INFINITY, None); configs.len()];
        for _ in 0..reps {
            for (ci, &(backend, _, threads)) in configs.iter().enumerate() {
                let template: SamplerSpec =
                    format!("--window seq --n 1000 --k {} --seed 42", p.multi_k)
                        .parse()
                        .expect("template spec");
                let engine: MultiStreamEngine<u64, u64> = MultiStreamEngine::with_backend(
                    template,
                    64,
                    SamplerSpec::build::<u64>,
                    threads,
                    backend,
                )
                .expect("engine");
                let start = Instant::now();
                for chunk in events.chunks(p.parallel_chunk) {
                    engine.ingest_parallel(chunk);
                }
                // The clock must cover the drain of the last
                // double-buffered epoch, not just its publication.
                engine.flush().expect("bench workload never panics");
                let elapsed = start.elapsed().as_secs_f64();
                if elapsed < best[ci].0 {
                    best[ci] = (elapsed, Some(engine.parallel_stats()));
                }
            }
        }
        for (ci, &(_, name, threads)) in configs.iter().enumerate() {
            let (seconds, stats) = std::mem::replace(&mut best[ci], (0.0, None));
            let st = stats.expect("at least one rep");
            assert_eq!(st.violations, 0, "one-shard-one-worker violated");
            out.push(ParallelRow {
                backend: name,
                keys,
                k: p.multi_k,
                shards: 64,
                threads: threads.min(64),
                batch: p.parallel_chunk,
                elements: p.multi_elements,
                seconds,
                elems_per_sec: p.multi_elements as f64 / seconds.max(1e-9),
                cores,
                units: st.units,
                steals: st.steals,
                imbalance: st.imbalance(),
            });
        }
    }
    out
}

/// Run the durable-pipeline section: the zipf-keyed fleet workload of
/// [`run_multi`] (seq-WR template, k = `multi_k`, n = 1000, 64 shards,
/// serial threads) ingested three ways — plain engine (`wal-off`),
/// through the write-ahead log (`wal-on`), and through the WAL with
/// periodic O(k)-per-key snapshots (`wal-snap`) — then timed through
/// recovery (`DurableEngine::open`: latest snapshot + log-tail replay).
/// Durable state lives under the system temp directory and is removed
/// before the function returns.
pub fn run_durable(p: &Params) -> Vec<DurableRow> {
    use swsample_core::spec::FleetBackend;
    use swsample_core::SamplerSpec;
    use swsample_durable::{DurableEngine, DurableOptions};
    use swsample_stream::{MultiStreamEngine, ValueGen, ZipfGen};

    let mut out = Vec::new();
    for &keys in &p.multi_keys {
        let mut rng = SmallRng::seed_from_u64(44);
        let mut zipf = ZipfGen::new(keys, 1.1);
        let events: Vec<(u64, u64, u64)> = (0..p.multi_elements)
            .map(|i| (zipf.next_value(&mut rng), i / 64, i))
            .collect();
        for (mode, snapshot_every) in [
            ("wal-off", 0u64),
            ("wal-on", 0),
            ("wal-snap", p.durable_snapshot_every),
        ] {
            let template = || -> SamplerSpec {
                format!("--window seq --n 1000 --k {} --seed 42", p.multi_k)
                    .parse()
                    .expect("template spec")
            };
            let dir = std::env::temp_dir().join(format!(
                "swsample-bench-durable-{}-{mode}-{keys}",
                std::process::id()
            ));
            let mut seconds = f64::INFINITY;
            let mut recovery = 0.0;
            for rep in 0..p.parallel_reps.max(1) {
                let last_rep = rep + 1 == p.parallel_reps.max(1);
                if mode == "wal-off" {
                    let engine: MultiStreamEngine<u64, u64> = MultiStreamEngine::with_backend(
                        template(),
                        64,
                        SamplerSpec::build::<u64>,
                        1,
                        FleetBackend::Auto,
                    )
                    .expect("engine");
                    let start = Instant::now();
                    for chunk in events.chunks(p.chunk) {
                        engine.ingest_parallel(chunk);
                    }
                    seconds = seconds.min(start.elapsed().as_secs_f64());
                    continue;
                }
                // Fresh directory per rep: `create` refuses to reuse one.
                let _ = std::fs::remove_dir_all(&dir);
                let opts = DurableOptions {
                    snapshot_every: (snapshot_every > 0).then_some(snapshot_every),
                    ..DurableOptions::default()
                };
                let mut engine: DurableEngine<u64, u64> = DurableEngine::create(
                    &dir,
                    template(),
                    64,
                    1,
                    FleetBackend::Auto,
                    opts.clone(),
                )
                .expect("durable engine");
                let start = Instant::now();
                for chunk in events.chunks(p.chunk) {
                    engine.ingest(chunk).expect("durable ingest");
                }
                engine.sync().expect("wal sync");
                seconds = seconds.min(start.elapsed().as_secs_f64());
                drop(engine);
                if last_rep {
                    // Recovery wall-clock: wal-on replays the whole log
                    // from the initial snapshot; wal-snap restores the
                    // newest snapshot and replays only the tail.
                    let start = Instant::now();
                    let recovered: DurableEngine<u64, u64> =
                        DurableEngine::open(&dir, opts).expect("recovery");
                    recovery = start.elapsed().as_secs_f64();
                    assert_eq!(
                        recovered.engine().num_keys() as u64,
                        events
                            .iter()
                            .map(|e| e.0)
                            .collect::<std::collections::HashSet<_>>()
                            .len() as u64,
                        "{mode}: recovered fleet lost keys"
                    );
                }
                let _ = std::fs::remove_dir_all(&dir);
            }
            out.push(DurableRow {
                mode,
                keys,
                k: p.multi_k,
                shards: 64,
                snapshot_every,
                elements: p.multi_elements,
                seconds,
                elems_per_sec: p.multi_elements as f64 / seconds.max(1e-9),
                recovery_seconds: recovery,
            });
        }
    }
    out
}

/// Run the end-to-end server section: a real loopback TCP
/// [`swsample_server::Server`] (seq-WR template, k = `multi_k`,
/// n = 1000, 64 shards) driven by the in-process load generator at each
/// connection count, next to a same-run direct `ingest_parallel`
/// baseline over the identical loadgen workload (seed 1, theta 1.1).
/// The ratio of the two is the serving tax the
/// [`SERVER_E2E_100K_GATE`] bar polices.
pub fn run_server(p: &Params) -> Vec<ServerRow> {
    use swsample_core::spec::FleetBackend;
    use swsample_core::SamplerSpec;
    use swsample_server::{loadgen, LoadgenConfig, Server, ServerConfig};
    use swsample_stream::{MultiStreamEngine, ValueGen, ZipfGen};

    let template = || -> SamplerSpec {
        format!("--window seq --n 1000 --k {} --seed 42", p.multi_k)
            .parse()
            .expect("template spec")
    };
    // Drain threads: enough to keep the queue from being the bottleneck
    // without oversubscribing loadgen's connection threads on small CI
    // hosts. The direct baseline uses the identical count so the ratio
    // isolates the wire, not the thread budget.
    let threads = machine().cores.clamp(1, 8);
    let mut out = Vec::new();
    for &keys in &p.multi_keys {
        // The loadgen workload, regenerated here for the direct
        // baseline: identical events, no sockets.
        let mut rng = SmallRng::seed_from_u64(1);
        let mut zipf = ZipfGen::new(keys, 1.1);
        let events: Vec<(u64, u64, u64)> = (0..p.multi_elements)
            .map(|i| (zipf.next_value(&mut rng), i / 64, i))
            .collect();
        let engine: MultiStreamEngine<u64, u64> = MultiStreamEngine::with_backend(
            template(),
            64,
            SamplerSpec::build::<u64>,
            threads,
            FleetBackend::Auto,
        )
        .expect("engine");
        let start = Instant::now();
        for chunk in events.chunks(p.parallel_chunk) {
            engine.ingest_parallel(chunk);
        }
        engine.flush().expect("bench workload never panics");
        let direct = p.multi_elements as f64 / start.elapsed().as_secs_f64().max(1e-9);
        drop((engine, events));

        for &connections in &p.server_connections {
            let mut cfg = ServerConfig::new(template());
            cfg.shards = 64;
            cfg.threads = threads;
            let server = Server::start(cfg).expect("server start");
            let mut lg = LoadgenConfig::new(server.local_addr().to_string());
            lg.connections = connections;
            lg.keys = keys;
            lg.count = p.multi_elements;
            lg.batch = p.parallel_chunk;
            let report = loadgen::run(&lg, &mut std::io::sink()).expect("loadgen run");
            server.shutdown();
            out.push(ServerRow {
                connections,
                keys,
                elements: report.events_sent,
                seconds: report.seconds,
                elems_per_sec: report.elems_per_sec,
                p50_us: report.p50_us,
                p99_us: report.p99_us,
                busy: report.busy_retries,
                direct_elems_per_sec: direct,
            });
        }
    }
    out
}

/// The durability-tax headline: WAL-on over WAL-off sustained ingest
/// throughput at 100k keys (same workload, same engine configuration).
/// `None` when the sweep has no 100k-key rows (the quick shape).
pub fn durable_wal_overhead_100k(durable: &[DurableRow]) -> Option<f64> {
    let get = |mode: &str| {
        durable
            .iter()
            .find(|r| r.keys == 100_000 && r.mode == mode)
            .map(|r| r.elems_per_sec)
    };
    Some(get("wal-on")? / get("wal-off")?)
}

/// The gated engine-redesign headline: best parallel-section elems/sec
/// at 100k keys over the fixed PR-3 baseline
/// ([`PR3_MULTI_100K_ELEMS_PER_SEC`]). `None` when the sweep did not
/// include a 100k-key row (the quick shape).
pub fn multi_100k_speedup(parallel: &[ParallelRow]) -> Option<f64> {
    parallel
        .iter()
        .filter(|r| r.keys == 100_000)
        .map(|r| r.elems_per_sec)
        .fold(None, |acc: Option<f64>, x| {
            Some(acc.map_or(x, |a| a.max(x)))
        })
        .map(|best| best / PR3_MULTI_100K_ELEMS_PER_SEC)
}

/// The SoA-backend headline: sustained (warm-fleet) 100k-key throughput
/// over the committed v3 cold figure ([`V3_MULTI_100K_ELEMS_PER_SEC`]).
/// The sustained regime is the one the struct-of-arrays layout targets
/// (per-element state access instead of box-pointer chasing); the cold
/// regime is accept-RNG-bound and backend-independent — both rows are in
/// the artifact, see the constant's docs for the full accounting. `None`
/// when the sweep has no SoA 100k row (the quick shape).
pub fn multi_soa_100k_speedup(multi: &[MultiRow]) -> Option<f64> {
    multi
        .iter()
        .find(|r| r.keys == 100_000 && r.backend == "soa")
        .map(|r| r.sustained_elems_per_sec / V3_MULTI_100K_ELEMS_PER_SEC)
}

/// SoA-vs-erased sustained throughput ratio at 100k keys, same run,
/// same workload — the apples-to-apples layout comparison. `None` when
/// either 100k row is missing.
pub fn multi_soa_vs_erased_100k(multi: &[MultiRow]) -> Option<f64> {
    let get = |b: &str| {
        multi
            .iter()
            .find(|r| r.keys == 100_000 && r.backend == b)
            .map(|r| r.sustained_elems_per_sec)
    };
    Some(get("soa")? / get("erased")?)
}

/// The serving-tax headline: best end-to-end server throughput at 100k
/// keys over the same-run direct `ingest_parallel` figure. Best-of over
/// connection counts — the gate asks whether *some* honest client shape
/// can feed the server near engine speed, not that every shape does.
/// `None` when the sweep has no 100k-key rows (the quick shape).
pub fn server_e2e_100k_vs_direct(server: &[ServerRow]) -> Option<f64> {
    server
        .iter()
        .filter(|r| r.keys == 100_000)
        .map(|r| r.elems_per_sec / r.direct_elems_per_sec.max(1e-9))
        .fold(None, |acc: Option<f64>, x| {
            Some(acc.map_or(x, |a| a.max(x)))
        })
}

/// `threads`-over-serial throughput ratio for one backend at one key
/// domain, same run. `None` when either row is missing.
fn thread_ratio(parallel: &[ParallelRow], keys: u64, backend: &str, threads: usize) -> Option<f64> {
    let get = |t: usize| {
        parallel
            .iter()
            .find(|r| r.keys == keys && r.backend == backend && r.threads == t)
            .map(|r| r.elems_per_sec)
    };
    Some(get(threads)? / get(1)?.max(1e-9))
}

/// The scheduler-overhead headline at one key domain: the *worse*
/// backend's 8-thread-over-serial throughput ratio. Gated at
/// [`PARALLEL_T8_OVERHEAD_GATE`] unconditionally — on a single-core
/// host the ratio measures pure scheduling tax, on a parallel host it
/// should clear 1 outright. `None` when the sweep lacks either row
/// (the quick shape stops at 2 threads).
pub fn parallel_t8_overhead(parallel: &[ParallelRow], keys: u64) -> Option<f64> {
    let e = thread_ratio(parallel, keys, "erased", 8)?;
    let s = thread_ratio(parallel, keys, "soa", 8)?;
    Some(e.min(s))
}

/// The work-stealing efficiency headline: the *better* backend's
/// 4-thread-over-serial ratio at 100k keys. Gated at
/// [`PARALLEL_T4_EFFICIENCY_GATE`] when the artifact's
/// `machine.cores > 1`. `None` when the sweep lacks the rows.
pub fn parallel_t4_efficiency_100k(parallel: &[ParallelRow]) -> Option<f64> {
    let e = thread_ratio(parallel, 100_000, "erased", 4)?;
    let s = thread_ratio(parallel, 100_000, "soa", 4)?;
    Some(e.max(s))
}

/// Elems/sec ratio between two samplers at a given configuration.
pub fn speedup(rows: &[Row], fast: &str, slow: &str, k: usize, n: u64) -> Option<f64> {
    let find = |name: &str| {
        rows.iter()
            .find(|r| r.sampler == name && r.k == k && r.n == n)
            .map(|r| r.elems_per_sec)
    };
    Some(find(fast)? / find(slow)?)
}

/// Render the suite result as the `BENCH_throughput.json` document
/// (schema v7: v6's sections with the `parallel` rows annotated with
/// the measuring host's core count and the work-stealing scheduler's
/// units/steals/imbalance counters, plus the gated
/// `parallel_t8_overhead_{1k,100k}` and `parallel_t4_efficiency_100k`
/// headlines).
pub fn to_json(
    rows: &[Row],
    multi: &[MultiRow],
    parallel: &[ParallelRow],
    durable: &[DurableRow],
    server: &[ServerRow],
    quick: bool,
) -> String {
    let m = machine();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"swsample-bench-throughput/v7\",\n");
    out.push_str(&format!("  \"quick\": {quick},\n"));
    // Host descriptor: throughput figures are only a trajectory on the
    // same machine; the block makes cross-host artifacts self-describing.
    out.push_str(&format!(
        "  \"machine\": {{\"cores\": {}, \"model\": \"{}\"}},\n",
        m.cores,
        json::escape(&m.model)
    ));
    // The acceptance-tracked ratios, surfaced at top level so trajectory
    // diffs catch regressions without re-deriving them from the rows.
    if let Some(s) = speedup(rows, "seq_wr_skip", "seq_wr_naive", 64, 100_000) {
        out.push_str(&format!(
            "  \"seq_wr_speedup_k64_n100000\": {},\n",
            json::number(s)
        ));
    }
    // Fused TsEngineBank vs the retained per-engine construction, at the
    // acceptance configuration (k = 64, n = 10^5).
    if let Some(s) = speedup(rows, "ts_wr", "ts_wr_indep", 64, 100_000) {
        out.push_str(&format!("  \"ts_wr_speedup_k64\": {},\n", json::number(s)));
    }
    if let Some(s) = speedup(rows, "ts_wor", "ts_wor_indep", 64, 100_000) {
        out.push_str(&format!("  \"ts_wor_speedup_k64\": {},\n", json::number(s)));
    }
    // Slab registry + parallel ingestion vs the pinned PR-3 engine
    // (best thread count, 100k keys, k = 16) — the PR-5 gated headline.
    if let Some(s) = multi_100k_speedup(parallel) {
        out.push_str(&format!("  \"multi_100k_speedup\": {},\n", json::number(s)));
    }
    // Work-stealing scheduler headlines: the overhead ratios (worse
    // backend, 8 threads over serial — armed on any host) and the
    // efficiency ratio (better backend, 4 threads over serial — armed
    // when machine.cores > 1).
    if let Some(s) = parallel_t8_overhead(parallel, 1_000) {
        out.push_str(&format!(
            "  \"parallel_t8_overhead_1k\": {},\n",
            json::number(s)
        ));
    }
    if let Some(s) = parallel_t8_overhead(parallel, 100_000) {
        out.push_str(&format!(
            "  \"parallel_t8_overhead_100k\": {},\n",
            json::number(s)
        ));
    }
    if let Some(s) = parallel_t4_efficiency_100k(parallel) {
        out.push_str(&format!(
            "  \"parallel_t4_efficiency_100k\": {},\n",
            json::number(s)
        ));
    }
    // SoA fleet backend vs the pinned v3 erased-backend figure
    // (sustained 100k-key throughput) — the PR-6 gated headline — plus
    // the same-run SoA/erased ratio for the pure layout comparison.
    if let Some(s) = multi_soa_100k_speedup(multi) {
        out.push_str(&format!(
            "  \"multi_soa_100k_speedup\": {},\n",
            json::number(s)
        ));
    }
    if let Some(s) = multi_soa_vs_erased_100k(multi) {
        out.push_str(&format!(
            "  \"multi_soa_vs_erased_100k\": {},\n",
            json::number(s)
        ));
    }
    // Durability tax at 100k keys (WAL-on / WAL-off ingest ratio) — the
    // PR-7 gated headline.
    if let Some(s) = durable_wal_overhead_100k(durable) {
        out.push_str(&format!(
            "  \"durable_wal_overhead_100k\": {},\n",
            json::number(s)
        ));
    }
    // Serving tax at 100k keys (best e2e / same-run direct ingest) —
    // the PR-8 gated headline.
    if let Some(s) = server_e2e_100k_vs_direct(server) {
        out.push_str(&format!(
            "  \"server_e2e_100k_vs_direct\": {},\n",
            json::number(s)
        ));
    }
    out.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"sampler\": \"{}\", \"discipline\": \"{}\", \"k\": {}, \"n\": {}, \
             \"elements\": {}, \"seconds\": {}, \"elems_per_sec\": {}, \"rng_draws\": {}, \
             \"draws_per_element\": {}}}{}\n",
            json::escape(r.sampler),
            json::escape(r.discipline),
            r.k,
            r.n,
            r.elements,
            json::number(r.seconds),
            json::number(r.elems_per_sec),
            r.rng_draws,
            json::number(r.rng_draws as f64 / r.elements as f64),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"multi_stream\": [\n");
    for (i, r) in multi.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"backend\": \"{}\", \"keys\": {}, \"k\": {}, \"shards\": {}, \
             \"elements\": {}, \"seconds\": {}, \"elems_per_sec\": {}, \
             \"sustained_elems_per_sec\": {}, \"keys_touched\": {}, \
             \"memory_words\": {}, \"max_key_words\": {}}}{}\n",
            json::escape(r.backend),
            r.keys,
            r.k,
            r.shards,
            r.elements,
            json::number(r.seconds),
            json::number(r.elems_per_sec),
            json::number(r.sustained_elems_per_sec),
            r.keys_touched,
            r.memory_words,
            r.max_key_words,
            if i + 1 == multi.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"parallel\": [\n");
    for (i, r) in parallel.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"backend\": \"{}\", \"keys\": {}, \"k\": {}, \"shards\": {}, \
             \"threads\": {}, \"batch\": {}, \"elements\": {}, \"seconds\": {}, \
             \"elems_per_sec\": {}, \"cores\": {}, \"units\": {}, \"steals\": {}, \
             \"imbalance\": {}}}{}\n",
            json::escape(r.backend),
            r.keys,
            r.k,
            r.shards,
            r.threads,
            r.batch,
            r.elements,
            json::number(r.seconds),
            json::number(r.elems_per_sec),
            r.cores,
            r.units,
            r.steals,
            json::number(r.imbalance),
            if i + 1 == parallel.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"durable\": [\n");
    for (i, r) in durable.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"mode\": \"{}\", \"keys\": {}, \"k\": {}, \"shards\": {}, \
             \"snapshot_every\": {}, \"elements\": {}, \"seconds\": {}, \
             \"elems_per_sec\": {}, \"recovery_seconds\": {}}}{}\n",
            json::escape(r.mode),
            r.keys,
            r.k,
            r.shards,
            r.snapshot_every,
            r.elements,
            json::number(r.seconds),
            json::number(r.elems_per_sec),
            json::number(r.recovery_seconds),
            if i + 1 == durable.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"server\": [\n");
    for (i, r) in server.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"connections\": {}, \"keys\": {}, \"elements\": {}, \
             \"seconds\": {}, \"elems_per_sec\": {}, \"p50_us\": {}, \
             \"p99_us\": {}, \"busy\": {}, \"direct_elems_per_sec\": {}}}{}\n",
            r.connections,
            r.keys,
            r.elements,
            json::number(r.seconds),
            json::number(r.elems_per_sec),
            r.p50_us,
            r.p99_us,
            r.busy,
            json::number(r.direct_elems_per_sec),
            if i + 1 == server.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn micro_params() -> Params {
        Params {
            ks: vec![2],
            ns: vec![1024],
            seq_elements: 4_000,
            ts_elements: 800,
            chunk: 128,
            multi_keys: vec![64],
            multi_elements: 4_000,
            multi_k: 4,
            multi_threads: vec![1, 2],
            parallel_chunk: 256,
            parallel_reps: 2,
            durable_snapshot_every: 4,
            server_connections: vec![1, 2],
        }
    }

    #[test]
    fn suite_runs_and_emits_valid_json() {
        let rows = run_with(&micro_params());
        assert_eq!(rows.len(), 14, "one row per sampler");
        for r in &rows {
            assert!(r.elems_per_sec > 0.0, "{}: zero throughput", r.sampler);
        }
        let multi = run_multi(&micro_params());
        let parallel = run_parallel(&micro_params());
        assert_eq!(parallel.len(), 4, "one row per (backend, keys, threads)");
        for r in &parallel {
            assert!(
                r.elems_per_sec > 0.0,
                "{} threads={}: zero throughput",
                r.backend,
                r.threads
            );
            assert!(r.cores >= 1);
            assert!(r.imbalance >= 1.0, "imbalance is max/mean, never < 1");
            if r.threads == 1 {
                // Inline serial path: the pool never runs.
                assert_eq!((r.units, r.steals), (0, 0));
            } else {
                assert!(r.units > 0, "pooled rows must execute units");
                assert!(r.steals <= r.units);
            }
        }
        let durable = run_durable(&micro_params());
        let server = run_server(&micro_params());
        assert_eq!(server.len(), 2, "one row per connection count");
        for r in &server {
            assert!(
                r.elems_per_sec > 0.0 && r.direct_elems_per_sec > 0.0,
                "conns={}: zero throughput",
                r.connections
            );
            assert_eq!(r.elements, micro_params().multi_elements);
        }
        let doc = to_json(&rows, &multi, &parallel, &durable, &server, true);
        json::validate(&doc).expect("emitted JSON must parse");
        assert!(
            doc.contains("\"multi_stream\"")
                && doc.contains("\"parallel\"")
                && doc.contains("\"durable\"")
                && doc.contains("\"server\": ["),
            "schema sections present"
        );
        assert!(
            doc.contains("\"schema\": \"swsample-bench-throughput/v7\"")
                && doc.contains("\"machine\": {\"cores\": "),
            "schema v7 header with machine block"
        );
        assert!(
            doc.contains("\"units\": ") && doc.contains("\"imbalance\": "),
            "parallel rows carry scheduler counters"
        );
        // 64-key micro sweep has no 100k row and stops at 2 threads, so
        // the gated fields stay out of the document rather than gating
        // on noise.
        assert!(multi_100k_speedup(&parallel).is_none());
        assert!(multi_soa_100k_speedup(&multi).is_none());
        assert!(multi_soa_vs_erased_100k(&multi).is_none());
        assert!(durable_wal_overhead_100k(&durable).is_none());
        assert!(server_e2e_100k_vs_direct(&server).is_none());
        assert!(parallel_t8_overhead(&parallel, 64).is_none());
        assert!(parallel_t4_efficiency_100k(&parallel).is_none());
        assert!(!doc.contains("multi_100k_speedup"));
        assert!(!doc.contains("multi_soa_100k_speedup"));
        assert!(!doc.contains("durable_wal_overhead_100k"));
        assert!(!doc.contains("server_e2e_100k_vs_direct"));
        assert!(!doc.contains("parallel_t8_overhead"));
        assert!(!doc.contains("parallel_t4_efficiency"));
    }

    #[test]
    fn durable_section_measures_all_modes_and_recovery() {
        let durable = run_durable(&micro_params());
        let modes: Vec<&str> = durable.iter().map(|r| r.mode).collect();
        assert_eq!(modes, ["wal-off", "wal-on", "wal-snap"]);
        for r in &durable {
            assert!(r.elems_per_sec > 0.0, "{}: zero throughput", r.mode);
        }
        // Only the durable modes have anything to recover, and recovery
        // of a real directory takes measurable time.
        assert_eq!(durable[0].recovery_seconds, 0.0);
        assert!(durable[1].recovery_seconds > 0.0);
        assert!(durable[2].recovery_seconds > 0.0);
        // wal-snap actually snapshotted mid-run.
        assert_eq!(
            durable[2].snapshot_every,
            micro_params().durable_snapshot_every
        );
    }

    #[test]
    fn multi_section_respects_per_key_caps() {
        let p = micro_params();
        let multi = run_multi(&p);
        assert_eq!(multi.len(), 2, "one row per backend");
        assert_eq!(multi[0].backend, "erased");
        assert_eq!(multi[1].backend, "soa");
        for r in &multi {
            assert!(r.elems_per_sec > 0.0);
            assert!(r.sustained_elems_per_sec > 0.0);
            assert!(r.keys_touched >= 1 && r.keys_touched as u64 <= r.keys);
            // Paper seq-WR template: Theorem 2.1's 7k+3 ceiling per key.
            let cap = 7 * p.multi_k + 3;
            assert!(
                r.max_key_words <= cap,
                "{}: hottest key {} words > cap {cap}",
                r.backend,
                r.max_key_words
            );
            assert!(r.memory_words <= r.keys_touched * cap);
        }
        // Both backends ingested the identical stream: key counts and
        // per-key footprints must agree exactly (bit-identity shows up
        // even in the accounting).
        assert_eq!(multi[0].keys_touched, multi[1].keys_touched);
        assert_eq!(multi[0].max_key_words, multi[1].max_key_words);
    }

    #[test]
    fn skip_paths_draw_fewer_rng_words() {
        let rows = run_with(&micro_params());
        let draws = |name: &str| {
            rows.iter()
                .find(|r| r.sampler == name)
                .expect("row present")
                .rng_draws
        };
        // k=2, n=1024, 4000 elements: naive draws ≥ k per element; the
        // skip path draws O(k log n) per bucket — far less.
        assert!(draws("seq_wr_naive") >= 2 * 4_000);
        assert!(
            draws("seq_wr_skip") * 10 < draws("seq_wr_naive"),
            "skip {} vs naive {}",
            draws("seq_wr_skip"),
            draws("seq_wr_naive")
        );
        assert!(draws("seq_wor_skip") < draws("seq_wor_naive"));
        assert!(draws("vitter_l") < draws("vitter_r"));
    }

    #[test]
    fn ts_bank_rows_meet_the_draw_bound() {
        // The fused ts samplers must ingest in ≤ k/32 + 1 words per
        // element (2k merge-coin bits per amortized merge), far below the
        // independent construction's per-word coins of old; the
        // independent rows now pack coins per engine and land low too,
        // but the fused rows are the gated ones.
        let p = micro_params();
        let rows = run_with(&p);
        for r in rows
            .iter()
            .filter(|r| r.sampler == "ts_wr" || r.sampler == "ts_wor")
        {
            let dpe = r.rng_draws as f64 / r.elements as f64;
            let bound = r.k as f64 / 32.0 + 1.0;
            assert!(
                dpe <= bound,
                "{} k={}: {dpe} draws/element > {bound}",
                r.sampler,
                r.k
            );
        }
    }

    #[test]
    fn speedup_lookup() {
        let rows = run_with(&micro_params());
        assert!(speedup(&rows, "seq_wr_skip", "seq_wr_naive", 2, 1024).is_some());
        assert!(speedup(&rows, "seq_wr_skip", "seq_wr_naive", 99, 1024).is_none());
    }
}
