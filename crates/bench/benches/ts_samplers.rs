//! Criterion bench for experiments E3/E5: per-element cost of the
//! timestamp-window samplers (Theorems 3.9 / 4.4) across window widths and
//! `k`, on steady and bursty arrival schedules.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;
use swsample_core::ts::{TsSamplerWor, TsSamplerWr};
use swsample_core::WindowSampler;

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("ts_insert");
    group.throughput(Throughput::Elements(1));
    for &t0 in &[256u64, 4096] {
        for &k in &[1usize, 8] {
            group.bench_with_input(
                BenchmarkId::new("wr", format!("t{t0}_k{k}")),
                &(t0, k),
                |b, &(t0, k)| {
                    let mut s = TsSamplerWr::new(t0, k, SmallRng::seed_from_u64(1));
                    let mut tick = 0u64;
                    let mut i = 0u64;
                    b.iter(|| {
                        // 4 arrivals per tick.
                        if i.is_multiple_of(4) {
                            tick += 1;
                            s.advance_time(tick);
                        }
                        s.insert(black_box(i));
                        i += 1;
                    });
                },
            );
            group.bench_with_input(
                BenchmarkId::new("wor", format!("t{t0}_k{k}")),
                &(t0, k),
                |b, &(t0, k)| {
                    let mut s = TsSamplerWor::new(t0, k, SmallRng::seed_from_u64(2));
                    let mut tick = 0u64;
                    let mut i = 0u64;
                    b.iter(|| {
                        if i.is_multiple_of(4) {
                            tick += 1;
                            s.advance_time(tick);
                        }
                        s.insert(black_box(i));
                        i += 1;
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("ts_query");
    for &k in &[1usize, 8] {
        group.bench_with_input(BenchmarkId::new("wr_sample_k", k), &k, |b, &k| {
            let mut s = TsSamplerWr::new(512, k, SmallRng::seed_from_u64(3));
            for tick in 0..2048u64 {
                s.advance_time(tick);
                s.insert(tick);
            }
            b.iter(|| black_box(s.sample_k()));
        });
        group.bench_with_input(BenchmarkId::new("wor_sample_k", k), &k, |b, &k| {
            let mut s = TsSamplerWor::new(512, k, SmallRng::seed_from_u64(4));
            for tick in 0..2048u64 {
                s.advance_time(tick);
                s.insert(tick);
            }
            b.iter(|| black_box(s.sample_k()));
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_insert, bench_query
}
criterion_main!(benches);
