//! Graph edge streams for the triangle-counting experiments (Cor. 5.3).
//!
//! Stream elements are undirected edges given in arbitrary order (the model
//! of Buriol et al., cited as \[19\] in the paper). The generator mixes
//! background random edges with *planted* triangles so the ground truth is
//! guaranteed to be non-trivial, and [`count_triangles`] computes the exact
//! triangle count of any edge multiset (used as the window ground truth).

use rand::Rng;
use std::collections::HashSet;

/// An undirected edge, stored with endpoints normalized `u < v`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Edge {
    /// Smaller endpoint.
    pub u: u32,
    /// Larger endpoint.
    pub v: u32,
}

impl Edge {
    /// Construct a normalized edge. Panics on self-loops.
    pub fn new(a: u32, b: u32) -> Self {
        assert_ne!(a, b, "Edge::new: self-loop {a}");
        if a < b {
            Self { u: a, v: b }
        } else {
            Self { u: b, v: a }
        }
    }
}

/// Generator of edge streams over `nodes` vertices.
///
/// Each call to [`EdgeStreamGen::next_edge`] emits, with probability
/// `triangle_rate`, the next edge of a freshly planted triangle (three
/// consecutive edges over a random vertex triple), otherwise a uniformly
/// random background edge. Duplicate edges may occur, as in the streaming
/// model; triangle counting treats the window as an edge *set*.
#[derive(Debug, Clone)]
pub struct EdgeStreamGen {
    nodes: u32,
    triangle_rate: f64,
    pending: Vec<Edge>,
}

impl EdgeStreamGen {
    /// New generator over `nodes ≥ 3` vertices with the given rate of
    /// planted-triangle edges.
    pub fn new(nodes: u32, triangle_rate: f64) -> Self {
        assert!(nodes >= 3, "EdgeStreamGen: need at least 3 nodes");
        assert!((0.0..=1.0).contains(&triangle_rate));
        Self {
            nodes,
            triangle_rate,
            pending: Vec::new(),
        }
    }

    /// Emit the next edge of the stream.
    pub fn next_edge<R: Rng>(&mut self, rng: &mut R) -> Edge {
        if let Some(e) = self.pending.pop() {
            return e;
        }
        if rng.gen_bool(self.triangle_rate) {
            // Plant a triangle on three distinct random vertices; emit its
            // first edge now and queue the other two.
            let (a, b, c) = self.random_triple(rng);
            self.pending.push(Edge::new(b, c));
            self.pending.push(Edge::new(a, c));
            Edge::new(a, b)
        } else {
            let (a, b) = self.random_pair(rng);
            Edge::new(a, b)
        }
    }

    fn random_pair<R: Rng>(&self, rng: &mut R) -> (u32, u32) {
        let a = rng.gen_range(0..self.nodes);
        let mut b = rng.gen_range(0..self.nodes - 1);
        if b >= a {
            b += 1;
        }
        (a, b)
    }

    fn random_triple<R: Rng>(&self, rng: &mut R) -> (u32, u32, u32) {
        let a = rng.gen_range(0..self.nodes);
        let mut b = rng.gen_range(0..self.nodes - 1);
        if b >= a {
            b += 1;
        }
        loop {
            let c = rng.gen_range(0..self.nodes);
            if c != a && c != b {
                return (a, b, c);
            }
        }
    }

    /// Number of vertices.
    pub fn nodes(&self) -> u32 {
        self.nodes
    }
}

/// Exact number of triangles in the edge multiset `edges` (duplicates are
/// collapsed: the graph is the *set* of edges).
///
/// Runs in `O(m^{3/2})`-ish time via per-edge neighbour intersection, which
/// is plenty for the window sizes the experiments use.
pub fn count_triangles(edges: &[Edge]) -> u64 {
    let set: HashSet<Edge> = edges.iter().copied().collect();
    let mut adj: std::collections::HashMap<u32, HashSet<u32>> = std::collections::HashMap::new();
    for e in &set {
        adj.entry(e.u).or_default().insert(e.v);
        adj.entry(e.v).or_default().insert(e.u);
    }
    let mut count = 0u64;
    for e in &set {
        let (nu, nv) = match (adj.get(&e.u), adj.get(&e.v)) {
            (Some(a), Some(b)) => (a, b),
            _ => continue,
        };
        let (small, large) = if nu.len() <= nv.len() {
            (nu, nv)
        } else {
            (nv, nu)
        };
        for w in small {
            // Count each triangle once: order the third vertex above both.
            if *w > e.v && large.contains(w) {
                count += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn edge_normalizes_endpoints() {
        assert_eq!(Edge::new(5, 2), Edge::new(2, 5));
        assert_eq!(Edge::new(5, 2).u, 2);
    }

    #[test]
    #[should_panic]
    fn edge_rejects_self_loop() {
        Edge::new(3, 3);
    }

    #[test]
    fn count_triangles_on_known_graphs() {
        // A single triangle.
        let tri = vec![Edge::new(0, 1), Edge::new(1, 2), Edge::new(0, 2)];
        assert_eq!(count_triangles(&tri), 1);
        // K4 has 4 triangles.
        let mut k4 = Vec::new();
        for a in 0..4u32 {
            for b in (a + 1)..4 {
                k4.push(Edge::new(a, b));
            }
        }
        assert_eq!(count_triangles(&k4), 4);
        // A path has none.
        let path = vec![Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 3)];
        assert_eq!(count_triangles(&path), 0);
        // Empty graph.
        assert_eq!(count_triangles(&[]), 0);
    }

    #[test]
    fn duplicates_do_not_double_count() {
        let tri = vec![
            Edge::new(0, 1),
            Edge::new(0, 1),
            Edge::new(1, 2),
            Edge::new(0, 2),
            Edge::new(0, 2),
        ];
        assert_eq!(count_triangles(&tri), 1);
    }

    #[test]
    fn k5_has_ten_triangles() {
        let mut k5 = Vec::new();
        for a in 0..5u32 {
            for b in (a + 1)..5 {
                k5.push(Edge::new(a, b));
            }
        }
        assert_eq!(count_triangles(&k5), 10);
    }

    #[test]
    fn generator_emits_valid_edges_and_plants_triangles() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut g = EdgeStreamGen::new(30, 0.5);
        let edges: Vec<Edge> = (0..600).map(|_| g.next_edge(&mut rng)).collect();
        for e in &edges {
            assert!(e.u < e.v && e.v < 30);
        }
        // With 50% planted-triangle edges over 600 edges there must be
        // plenty of triangles.
        assert!(count_triangles(&edges) > 10);
    }

    #[test]
    fn zero_rate_generator_rarely_forms_triangles() {
        let mut rng = SmallRng::seed_from_u64(12);
        let mut g = EdgeStreamGen::new(1000, 0.0);
        let edges: Vec<Edge> = (0..200).map(|_| g.next_edge(&mut rng)).collect();
        // 200 random edges over 1000 nodes: expected triangle count ~ 0.
        assert!(count_triangles(&edges) <= 1);
    }
}
