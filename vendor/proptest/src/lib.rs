//! Offline vendored subset of the `proptest` property-testing API.
//!
//! The build environment has no network access to crates.io, so this crate
//! provides a source-compatible miniature of the proptest surface the
//! workspace's property tests use:
//!
//! * the [`proptest!`] macro (with the `#![proptest_config(..)]` header
//!   form) expanding each property into a `#[test]`;
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`];
//! * strategies: integer ranges (`1u64..200`), [`prelude::any`],
//!   tuples of strategies, and [`collection::vec`];
//! * [`test_runner::ProptestConfig`] and [`test_runner::TestCaseError`].
//!
//! Differences from upstream, deliberately accepted for an offline test
//! harness: no shrinking (a failing case reports its exact inputs and can
//! be replayed — generation is fully deterministic per test name, and the
//! runner catches panics inside the body so inputs are reported even for
//! plain `assert!`/index failures), and no persistence files. Determinism also satisfies the workspace's
//! no-flaky-tests policy: every run of a given test binary sees the same
//! input sequence.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The things property tests conventionally glob-import.
pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` for `config.cases` generated
/// inputs, reporting the first failing input verbatim.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr) $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            // Deterministic per-test seed: same inputs every run.
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                // Eager: the body below may consume the inputs by value.
                let dump = {
                    let mut s = ::std::string::String::new();
                    $(s.push_str(&format!(
                        "  {} = {:?}\n", stringify!($arg), &$arg
                    ));)+
                    s
                };
                // catch_unwind so a plain panic!/assert!/index-out-of-
                // bounds inside the body still reports the generated
                // inputs, not just the panic message.
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(
                        || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                            $body
                            ::std::result::Result::Ok(())
                        }
                    )
                );
                match outcome {
                    ::std::result::Result::Ok(::std::result::Result::Ok(())) => {}
                    ::std::result::Result::Ok(::std::result::Result::Err(e)) => {
                        panic!(
                            "proptest case {}/{} failed: {}\ninputs:\n{}",
                            case + 1, config.cases, e, dump
                        );
                    }
                    ::std::result::Result::Err(payload) => {
                        eprintln!(
                            "proptest case {}/{} panicked; inputs:\n{}",
                            case + 1, config.cases, dump
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        }
    )*};
}

/// Like `assert!`, but fails the current generated case with its inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*))
            );
        }
    };
}

/// Like `assert_eq!`, but fails the current generated case with its inputs.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `(left == right)`\n  left: `{:?}`,\n right: `{:?}`", l, r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `(left == right)`\n  left: `{:?}`,\n right: `{:?}`: {}",
            l, r, format!($($fmt)*)
        );
    }};
}

/// Like `assert_ne!`, but fails the current generated case with its inputs.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `(left != right)`\n  left: `{:?}`,\n right: `{:?}`", l, r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `(left != right)`\n  left: `{:?}`,\n right: `{:?}`: {}",
            l, r, format!($($fmt)*)
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::collection::vec;
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_honor_bounds(
            a in 1u64..50,
            b in 3usize..9,
            pair in (0u64..4, 10u64..20),
        ) {
            prop_assert!((1..50).contains(&a));
            prop_assert!((3..9).contains(&b));
            prop_assert!(pair.0 < 4 && (10..20).contains(&pair.1));
        }

        #[test]
        fn vec_strategy_sizes(v in vec(0u64..100, 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
            for x in &v {
                prop_assert!(*x < 100, "x = {x}");
            }
        }

        #[test]
        fn question_mark_propagates(n in 0u64..10) {
            let ok: Result<u64, String> = Ok(n);
            let got = ok.map_err(TestCaseError::fail)?;
            prop_assert_eq!(got, n);
        }
    }

    #[test]
    fn generation_is_deterministic_per_test_name() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::for_test("t");
        let mut b = crate::test_runner::TestRng::for_test("t");
        let s = 0u64..1000;
        let xs: Vec<u64> = (0..50).map(|_| s.generate(&mut a)).collect();
        let ys: Vec<u64> = (0..50).map(|_| s.generate(&mut b)).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics_with_inputs() {
        // No #[test] meta: the fn is invoked directly below, not collected.
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn always_fails(x in 0u64..2) {
                prop_assert!(x > 100, "x = {x} is small");
            }
        }
        always_fails();
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn plain_panic_keeps_payload_after_input_dump() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(2))]
            #[allow(unused)]
            fn panics_directly(x in 0u64..4) {
                // Not a prop_assert: the runner must dump inputs to stderr
                // and re-raise this exact payload.
                assert!(x > 100, "boom: x = {x}");
            }
        }
        panics_directly();
    }
}
