//! # swsample — optimal sampling from sliding windows
//!
//! Facade crate for the `swsample` workspace, a from-scratch Rust
//! implementation of
//!
//! > Braverman, Ostrovsky, Zaniolo. *Optimal sampling from sliding windows.*
//! > PODS 2009 / J. Comput. Syst. Sci. 78(1):260–272 (2012).
//!
//! It re-exports the public API of every sub-crate:
//!
//! * [`core`] — the paper's samplers: [`core::seq::SeqSamplerWr`]
//!   (Theorem 2.1), [`core::seq::SeqSamplerWor`] (Theorem 2.2),
//!   [`core::ts::TsSamplerWr`] (§3, Theorem 3.9), and
//!   [`core::ts::TsSamplerWor`] (§4, Theorem 4.4).
//! * [`stream`] — workload generators, timestamp models, and the
//!   [`stream::MultiStreamEngine`] keyed fleet of per-key windows.
//! * [`baselines`] — the prior methods the paper improves on.
//! * [`apps`] — §5 applications (frequency moments, entropy, triangles).
//! * [`stats`] — the statistical test machinery used for validation.
//! * [`durable`] — write-ahead logging, O(k) snapshots, and bit-identical
//!   crash recovery for the keyed fleet ([`durable::DurableEngine`]).
//! * [`server`] — a std-only TCP serving layer over the fleet
//!   ([`server::Server`]): length-prefixed crc-framed wire protocol,
//!   batched ingest with backpressure, continuous queries, and the
//!   [`server::Client`] / load-generator pair.
//!
//! ## Quickstart
//!
//! ```
//! use swsample::core::seq::SeqSamplerWr;
//! use swsample::core::WindowSampler;
//! use rand::SeedableRng;
//!
//! // Keep k = 4 uniform samples (with replacement) over the last 1000 items.
//! let rng = rand::rngs::SmallRng::seed_from_u64(7);
//! let mut sampler = SeqSamplerWr::new(1000, 4, rng);
//! for x in 0..10_000u64 {
//!     sampler.insert(x);
//! }
//! let samples = sampler.sample_k().expect("window is non-empty");
//! assert_eq!(samples.len(), 4);
//! for s in &samples {
//!     assert!(*s.value() >= 9_000, "every sample lies in the window");
//! }
//! ```
#![forbid(unsafe_code)]

// Compile README code blocks as doctests, so the documented embedding
// examples (quickstart, SamplerSpec, MultiStreamEngine) cannot rot.
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
mod readme_doctests {}

pub use swsample_apps as apps;
pub use swsample_baselines as baselines;
pub use swsample_core as core;
pub use swsample_counting as counting;
pub use swsample_durable as durable;
pub use swsample_query as query;
pub use swsample_server as server;
pub use swsample_stats as stats;
pub use swsample_stream as stream;
