//! Step-biased sampling over nested windows (§5, final paragraph).
//!
//! Biased sampling (Aggarwal, VLDB'06) gives more recent elements higher
//! inclusion probability. The paper observes that *step* bias functions
//! follow directly from its machinery: "maintaining samples over each
//! window with different lengths and combining the samples with
//! corresponding probabilities". [`StepBiasedSampler`] does exactly that —
//! one [`SeqSamplerWr`] per step, mixture-sampled by the step weights. The
//! resulting inclusion probability of an element of age `a` is the
//! decreasing step function
//!
//! ```text
//! P(sampled element has age a) · n_eff = Σ_{i : nᵢ > a} wᵢ / nᵢ
//! ```
//!
//! which [`StepBiasedSampler::step_probability`] exposes so tests can check
//! the realized distribution against the specification.

use rand::Rng;
use swsample_core::seq::SeqSamplerWr;
use swsample_core::{MemoryWords, Sample, WindowSampler};

/// A step of the bias function: window length and mixture weight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BiasStep {
    /// Window length `nᵢ` (elements of age `< nᵢ` are covered).
    pub window: u64,
    /// Non-negative mixture weight `wᵢ`.
    pub weight: f64,
}

/// Step-biased sampler: a weighted mixture of uniform window samplers of
/// different lengths.
#[derive(Debug, Clone)]
pub struct StepBiasedSampler<T, R> {
    steps: Vec<BiasStep>,
    samplers: Vec<SeqSamplerWr<T, R>>,
    total_weight: f64,
}

impl<T: Clone, R: Rng + Clone + 'static> StepBiasedSampler<T, R> {
    /// Build from strictly increasing window lengths with positive weights.
    /// Each internal sampler gets a clone of `rng` reseeded by `Rng::gen`,
    /// so the mixtures are independent.
    pub fn new(steps: &[BiasStep], mut rng: R) -> Self
    where
        R: rand::SeedableRng,
    {
        assert!(!steps.is_empty(), "StepBiasedSampler: no steps");
        let mut total = 0.0;
        for w in steps.windows(2) {
            assert!(
                w[0].window < w[1].window,
                "StepBiasedSampler: windows must increase"
            );
        }
        for s in steps {
            assert!(
                s.weight > 0.0 && s.window >= 1,
                "StepBiasedSampler: bad step {s:?}"
            );
            total += s.weight;
        }
        let samplers = steps
            .iter()
            .map(|s| SeqSamplerWr::new(s.window, 1, R::seed_from_u64(rng.gen())))
            .collect();
        Self {
            steps: steps.to_vec(),
            samplers,
            total_weight: total,
        }
    }

    /// Feed the next arrival into every step sampler.
    pub fn insert(&mut self, value: T) {
        for s in &mut self.samplers {
            s.push(value.clone());
        }
    }

    /// Draw one biased sample: choose a step by weight, then sample its
    /// window uniformly.
    pub fn sample<G: Rng>(&mut self, rng: &mut G) -> Option<Sample<T>> {
        let mut pick = rng.gen_range(0.0..self.total_weight);
        for (i, step) in self.steps.iter().enumerate() {
            if pick < step.weight {
                return self.samplers[i].sample();
            }
            pick -= step.weight;
        }
        // Float round-off: fall back to the last step.
        self.samplers.last_mut().expect("nonempty").sample()
    }

    /// The specified sampling probability for an element of age `a`
    /// (0 = newest), given all step windows are full:
    /// `Σ_{i: nᵢ > a} (wᵢ / W) / nᵢ`.
    pub fn step_probability(&self, age: u64) -> f64 {
        self.steps
            .iter()
            .filter(|s| s.window > age)
            .map(|s| (s.weight / self.total_weight) / s.window as f64)
            .sum()
    }

    /// The step specification.
    pub fn steps(&self) -> &[BiasStep] {
        &self.steps
    }
}

impl<T, R> MemoryWords for StepBiasedSampler<T, R> {
    fn memory_words(&self) -> usize {
        self.samplers
            .iter()
            .map(MemoryWords::memory_words)
            .sum::<usize>()
            + self.steps.len() * 2
            + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use swsample_stats::chi_square_test;

    fn two_step() -> Vec<BiasStep> {
        vec![
            BiasStep {
                window: 4,
                weight: 1.0,
            },
            BiasStep {
                window: 16,
                weight: 1.0,
            },
        ]
    }

    #[test]
    fn step_probability_is_decreasing_step_function() {
        let s: StepBiasedSampler<u64, SmallRng> =
            StepBiasedSampler::new(&two_step(), SmallRng::seed_from_u64(0));
        // Ages 0..3 covered by both windows: 0.5/4 + 0.5/16.
        let recent = 0.5 / 4.0 + 0.5 / 16.0;
        let old = 0.5 / 16.0;
        assert!((s.step_probability(0) - recent).abs() < 1e-12);
        assert!((s.step_probability(3) - recent).abs() < 1e-12);
        assert!((s.step_probability(4) - old).abs() < 1e-12);
        assert!((s.step_probability(15) - old).abs() < 1e-12);
        assert_eq!(s.step_probability(16), 0.0);
        // Total mass over ages is 1.
        let total: f64 = (0..16).map(|a| s.step_probability(a)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn realized_distribution_matches_specification() {
        let trials = 40_000u64;
        let mut counts = vec![0u64; 16];
        for t in 0..trials {
            let mut s: StepBiasedSampler<u64, SmallRng> =
                StepBiasedSampler::new(&two_step(), SmallRng::seed_from_u64(1_000 + t));
            for i in 0..64u64 {
                s.insert(i);
            }
            let mut rng = SmallRng::seed_from_u64(5_000_000 + t);
            let got = s.sample(&mut rng).expect("nonempty");
            let age = 63 - got.index();
            counts[age as usize] += 1;
        }
        let spec: StepBiasedSampler<u64, SmallRng> =
            StepBiasedSampler::new(&two_step(), SmallRng::seed_from_u64(0));
        let probs: Vec<f64> = (0..16).map(|a| spec.step_probability(a)).collect();
        let out = chi_square_test(&counts, &probs);
        assert!(
            out.p_value > 1e-4,
            "biased sampling off-spec: p = {}",
            out.p_value
        );
    }

    #[test]
    fn memory_is_sum_of_steps() {
        let mut s: StepBiasedSampler<u64, SmallRng> =
            StepBiasedSampler::new(&two_step(), SmallRng::seed_from_u64(2));
        for i in 0..100u64 {
            s.insert(i);
        }
        // Two k=1 samplers: bounded by 2 · (2·3 + 1 + 3) + steps bookkeeping.
        assert!(s.memory_words() <= 2 * 10 + 5);
    }

    #[test]
    #[should_panic]
    fn rejects_nonincreasing_windows() {
        let steps = vec![
            BiasStep {
                window: 8,
                weight: 1.0,
            },
            BiasStep {
                window: 8,
                weight: 1.0,
            },
        ];
        let _: StepBiasedSampler<u64, SmallRng> =
            StepBiasedSampler::new(&steps, SmallRng::seed_from_u64(3));
    }
}
