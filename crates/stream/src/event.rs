//! The stream event model: timestamps and window disciplines.

/// Logical timestamps are non-negative ticks. Many items may share a tick
/// (bursts); timestamps are non-decreasing along the stream, exactly as in
/// the paper's timestamp-based model (§3).
pub type Timestamp = u64;

/// Which sliding-window discipline governs expiry.
///
/// * `Sequence(n)` — the last `n` arrivals are active (§2, "fixed-size" /
///   "sequence-based" windows).
/// * `Timestamp(t0)` — an element with timestamp `T(p)` is active at time
///   `t` iff `t − T(p) < t0` (§3, "timestamp-based" windows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WindowSpec {
    /// Fixed-size window over the last `n` arrivals.
    Sequence(u64),
    /// Timestamp window of width `t0` ticks.
    Timestamp(u64),
}

impl WindowSpec {
    /// Is an element with arrival index `index` / timestamp `ts` active,
    /// given the newest arrival index is `newest_index` and the clock reads
    /// `now`?
    pub fn is_active(&self, index: u64, ts: Timestamp, newest_index: u64, now: Timestamp) -> bool {
        match *self {
            WindowSpec::Sequence(n) => index + n > newest_index,
            WindowSpec::Timestamp(t0) => {
                debug_assert!(now >= ts, "clock ran backwards");
                now - ts < t0
            }
        }
    }

    /// Window-size parameter (`n` or `t0`).
    pub fn parameter(&self) -> u64 {
        match *self {
            WindowSpec::Sequence(n) | WindowSpec::Timestamp(n) => n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_window_activity() {
        let w = WindowSpec::Sequence(10);
        // newest index 99: active indices are 90..=99.
        assert!(w.is_active(90, 0, 99, 0));
        assert!(w.is_active(99, 0, 99, 0));
        assert!(!w.is_active(89, 0, 99, 0));
    }

    #[test]
    fn timestamp_window_activity() {
        let w = WindowSpec::Timestamp(5);
        // now = 10: active timestamps are 6..=10.
        assert!(w.is_active(0, 6, 0, 10));
        assert!(w.is_active(0, 10, 0, 10));
        assert!(!w.is_active(0, 5, 0, 10));
    }

    #[test]
    fn boundary_element_expires_exactly_at_t0() {
        let w = WindowSpec::Timestamp(3);
        assert!(w.is_active(0, 7, 0, 9)); // age 2 < 3
        assert!(!w.is_active(0, 7, 0, 10)); // age 3 == t0 -> expired
    }

    #[test]
    fn parameter_accessor() {
        assert_eq!(WindowSpec::Sequence(42).parameter(), 42);
        assert_eq!(WindowSpec::Timestamp(7).parameter(), 7);
    }
}
