//! E6 / E7 / E8 — the head-to-head comparisons motivating the paper:
//! deterministic vs randomized memory, per-element cost, and the failure
//! probability of over-sampling.

use crate::{f3, pct, table_header, table_row};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use swsample_baselines::{
    ChainSampler, OverSampler, PrioritySampler, PriorityTopK, StreamReservoir,
};
use swsample_core::seq::{SeqSamplerWor, SeqSamplerWr};
use swsample_core::ts::{TsSamplerWor, TsSamplerWr};
use swsample_core::{SamplerSpec, WindowSampler};
use swsample_stats::Summary;

/// Collect {mean, p99, max} of the memory trajectory of a sequence
/// sampler, through the erased interface.
fn seq_trace(s: &mut dyn swsample_core::ErasedWindowSampler<u64>, len: u64, seed: u64) -> Summary {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut trace = Vec::with_capacity(len as usize);
    for _ in 0..len {
        s.insert(rng.gen_range(0..1_000_000u64));
        trace.push(s.memory_words() as f64);
    }
    Summary::of(&trace)
}

fn ts_trace(
    s: &mut dyn swsample_core::ErasedWindowSampler<u64>,
    ticks: u64,
    per_tick: u64,
    seed: u64,
) -> Summary {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut trace = Vec::new();
    for tick in 0..ticks {
        s.advance_time(tick);
        for _ in 0..per_tick {
            s.insert(rng.gen_range(0..1_000_000u64));
            trace.push(s.memory_words() as f64);
        }
    }
    Summary::of(&trace)
}

/// Build one sampler from its spec flag surface, through the full
/// factory (paper and baseline algorithms alike).
fn from_spec(flags: &str) -> Box<dyn swsample_core::ErasedWindowSampler<u64>> {
    let spec: SamplerSpec = flags.parse().unwrap_or_else(|e| panic!("{flags}: {e}"));
    swsample_baselines::spec::build(&spec).unwrap_or_else(|e| panic!("{flags}: {e}"))
}

/// E6: the paper's central claim in one table — our samplers' max equals
/// their typical usage (deterministic), the baselines' max drifts far above
/// their mean (randomized).
pub fn e6_deterministic_vs_randomized() {
    let stream = 200_000u64;
    table_header(
        "E6a — sequence windows, n = 1024, k = 8, 200k elements: memory words",
        &["algorithm", "mean", "p99", "max", "bound kind"],
    );
    // Spec-driven: the sweep is a list of *descriptions*; one erased loop
    // profiles them all. OverSampler keeps concrete construction (its k'
    // is outside the spec grammar) — the blanket impl erases it the same.
    type Row = (
        &'static str,
        Box<dyn swsample_core::ErasedWindowSampler<u64>>,
        u64,
        &'static str,
    );
    let seq_rows: Vec<Row> = vec![
        (
            "SeqSamplerWr (Thm 2.1)",
            from_spec("--window seq --n 1024 --mode wr --algo paper --k 8 --seed 1"),
            2,
            "deterministic",
        ),
        (
            "SeqSamplerWor (Thm 2.2)",
            from_spec("--window seq --n 1024 --mode wor --algo paper --k 8 --seed 3"),
            4,
            "deterministic",
        ),
        (
            "ChainSampler (BDM'02)",
            from_spec("--window seq --n 1024 --mode wr --algo chain --k 8 --seed 5"),
            6,
            "randomized",
        ),
        (
            "OverSampler k'=2k (BDM'02)",
            Box::new(OverSampler::new(1024, 8, 16, SmallRng::seed_from_u64(7))),
            8,
            "randomized",
        ),
        (
            "WindowBuffer (exact)",
            from_spec("--window seq --n 1024 --mode wor --algo window-buffer --k 8 --seed 9"),
            10,
            "Θ(n)",
        ),
        (
            "StreamReservoir (no window)",
            from_spec("--window stream --mode wor --algo reservoir-l --k 8 --seed 11"),
            12,
            "deterministic",
        ),
    ];
    for (name, mut sampler, trace_seed, kind) in seq_rows {
        let s = seq_trace(sampler.as_mut(), stream, trace_seed);
        table_row(&[name.into(), f3(s.mean), f3(s.p99), f3(s.max), kind.into()]);
    }

    let (per_tick, ticks) = (4u64, 20_000u64);
    table_header(
        "E6b — timestamp windows, t0 = 256, 4/tick (n = 1024), k = 8: memory words",
        &["algorithm", "mean", "p99", "max", "bound kind"],
    );
    let ts_rows: Vec<Row> = vec![
        (
            "TsSamplerWr (Thm 3.9)",
            from_spec("--window ts --w 256 --mode wr --algo paper --k 8 --seed 13"),
            14,
            "deterministic",
        ),
        (
            "TsSamplerWor (Thm 4.4)",
            from_spec("--window ts --w 256 --mode wor --algo paper --k 8 --seed 15"),
            16,
            "deterministic",
        ),
        (
            "PrioritySampler (BDM'02)",
            from_spec("--window ts --w 256 --mode wr --algo priority --k 8 --seed 17"),
            18,
            "randomized",
        ),
        (
            "PriorityTopK (GL'08)",
            from_spec("--window ts --w 256 --mode wor --algo priority --k 8 --seed 19"),
            20,
            "randomized",
        ),
        (
            "WindowBuffer (exact)",
            from_spec("--window ts --w 256 --mode wor --algo window-buffer --k 8 --seed 21"),
            22,
            "Θ(n)",
        ),
    ];
    for (name, mut sampler, trace_seed, kind) in ts_rows {
        let s = ts_trace(sampler.as_mut(), ticks, per_tick, trace_seed);
        table_row(&[name.into(), f3(s.mean), f3(s.p99), f3(s.max), kind.into()]);
    }
}

/// E7: per-element processing cost (wall clock, coarse — the Criterion
/// benches in `benches/` give the precise numbers).
pub fn e7_throughput() {
    use std::time::Instant;
    let (n, k, stream) = (4096u64, 8usize, 400_000u64);
    table_header(
        "E7 — per-element insert cost, sequence windows (n = 4096, k = 8)",
        &["algorithm", "ns/element (coarse)"],
    );
    let run = |name: &str, f: &mut dyn FnMut()| {
        let start = Instant::now();
        f();
        let ns = start.elapsed().as_nanos() as f64 / stream as f64;
        table_row(&[name.into(), f3(ns)]);
    };
    let mut rng = SmallRng::seed_from_u64(42);
    let values: Vec<u64> = (0..stream).map(|_| rng.gen_range(0..1_000_000)).collect();

    let mut s1 = SeqSamplerWr::new(n, k, SmallRng::seed_from_u64(1));
    run("SeqSamplerWr", &mut || {
        values.iter().for_each(|&v| s1.insert(v))
    });
    let mut s2 = SeqSamplerWor::new(n, k, SmallRng::seed_from_u64(2));
    run("SeqSamplerWor", &mut || {
        values.iter().for_each(|&v| s2.insert(v))
    });
    let mut s3 = ChainSampler::new(n, k, SmallRng::seed_from_u64(3));
    run("ChainSampler", &mut || {
        values.iter().for_each(|&v| s3.insert(v))
    });
    let mut s4 = OverSampler::new(n, k, 2 * k, SmallRng::seed_from_u64(4));
    run("OverSampler k'=2k", &mut || {
        values.iter().for_each(|&v| s4.insert(v))
    });
    let mut s5 = StreamReservoir::new(k, SmallRng::seed_from_u64(5));
    run("StreamReservoir", &mut || {
        values.iter().for_each(|&v| s5.insert(v))
    });

    let (t0, per_tick) = (1024u64, 4u64);
    table_header(
        "E7b — per-element insert cost, timestamp windows (t0 = 1024, 4/tick, k = 8)",
        &["algorithm", "ns/element (coarse)"],
    );
    let ticks = stream / per_tick;
    let run_ts = |name: &str, s: &mut dyn WindowSampler<u64>| {
        let start = Instant::now();
        let mut it = values.iter();
        for tick in 0..ticks {
            s.advance_time(tick);
            for _ in 0..per_tick {
                s.insert(*it.next().expect("enough values"));
            }
        }
        let ns = start.elapsed().as_nanos() as f64 / stream as f64;
        table_row(&[name.into(), f3(ns)]);
    };
    run_ts(
        "TsSamplerWr",
        &mut TsSamplerWr::new(t0, k, SmallRng::seed_from_u64(6)),
    );
    run_ts(
        "TsSamplerWor",
        &mut TsSamplerWor::new(t0, k, SmallRng::seed_from_u64(7)),
    );
    run_ts(
        "PrioritySampler",
        &mut PrioritySampler::new(t0, k, SmallRng::seed_from_u64(8)),
    );
    run_ts(
        "PriorityTopK",
        &mut PriorityTopK::new(t0, k, SmallRng::seed_from_u64(9)),
    );
}

/// E8: failure probability of over-sampling — disadvantage (b) of §1.
/// A failure is a query where fewer than `k` distinct elements are
/// available among the `k'` maintained samples.
pub fn e8_oversampling_failure() {
    let (n, k) = (64u64, 8usize);
    table_header(
        "E8 — over-sampling failure probability (n = 64, k = 8, 4000 queries/row)",
        &[
            "k'",
            "factor",
            "measured P(fail)",
            "occupancy-model P(fail)",
        ],
    );
    for &factor in &[1.0f64, 1.5, 2.0, 4.0] {
        let k_prime = ((k as f64) * factor).ceil() as usize;
        let trials = 4_000u64;
        let mut failures = 0u64;
        for t in 0..trials {
            let mut s = OverSampler::new(n, k, k_prime, SmallRng::seed_from_u64(t));
            // Random query offset to average over window phases.
            let stop = 2 * n + (t % n);
            for i in 0..stop {
                s.insert(i);
            }
            if s.try_sample_k().is_err() {
                failures += 1;
            }
        }
        // Occupancy model: k' independent uniform draws from n values; fail
        // when fewer than k distinct. Monte-Carlo with a fresh seed stream.
        let mut rng = SmallRng::seed_from_u64(99_999);
        let mut model_failures = 0u64;
        let model_trials = 40_000u64;
        for _ in 0..model_trials {
            let mut seen = vec![false; n as usize];
            let mut distinct = 0;
            for _ in 0..k_prime {
                let v = rng.gen_range(0..n) as usize;
                if !seen[v] {
                    seen[v] = true;
                    distinct += 1;
                }
            }
            if distinct < k {
                model_failures += 1;
            }
        }
        table_row(&[
            k_prime.to_string(),
            format!("{factor:.1}"),
            pct(failures as f64 / trials as f64),
            pct(model_failures as f64 / model_trials as f64),
        ]);
    }
    println!("(the paper's point: no finite k' drives the failure probability to 0,");
    println!(" while Theorem 2.2 needs no over-sampling at all)");
}
