//! Log-gamma and regularized incomplete gamma functions.
//!
//! These are the numerical primitives behind the chi-square CDF
//! (`P(X <= x) = reg_gamma_lower(df/2, x/2)`). The implementations follow
//! the classic Lanczos approximation for `ln Γ` and the series/continued-
//! fraction split from *Numerical Recipes* for the incomplete gamma, which
//! is accurate to ~1e-12 over the ranges the test-suite needs.

/// Lanczos coefficients (g = 7, n = 9), double precision.
const LANCZOS_G: f64 = 7.0;
const LANCZOS: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural log of the gamma function for `x > 0`.
///
/// Uses the Lanczos approximation with reflection for `x < 0.5`.
///
/// # Panics
/// Panics if `x` is not finite or `x <= 0` after reflection is impossible
/// (i.e. `x` is a non-positive integer).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x.is_finite(), "ln_gamma: non-finite input {x}");
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1−x) = π / sin(πx)
        let s = (std::f64::consts::PI * x).sin();
        assert!(s != 0.0, "ln_gamma: pole at non-positive integer {x}");
        std::f64::consts::PI.ln() - s.abs().ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let mut acc = LANCZOS[0];
        for (i, &c) in LANCZOS.iter().enumerate().skip(1) {
            acc += c / (x + i as f64);
        }
        let t = x + LANCZOS_G + 0.5;
        0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
    }
}

/// Regularized lower incomplete gamma function `P(a, x) = γ(a,x)/Γ(a)`.
///
/// `P(a, 0) = 0`, `P(a, ∞) = 1`, monotone increasing in `x`.
pub fn reg_gamma_lower(a: f64, x: f64) -> f64 {
    assert!(
        a > 0.0 && x >= 0.0,
        "reg_gamma_lower: invalid (a={a}, x={x})"
    );
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        lower_series(a, x)
    } else {
        1.0 - upper_continued_fraction(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 − P(a, x)`.
pub fn reg_gamma_upper(a: f64, x: f64) -> f64 {
    assert!(
        a > 0.0 && x >= 0.0,
        "reg_gamma_upper: invalid (a={a}, x={x})"
    );
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - lower_series(a, x)
    } else {
        upper_continued_fraction(a, x)
    }
}

/// Series expansion for P(a, x), valid (fast-converging) for x < a + 1.
fn lower_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut term = sum;
    for _ in 0..500 {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if term.abs() < sum.abs() * 1e-15 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Lentz continued fraction for Q(a, x), valid for x >= a + 1.
fn upper_continued_fraction(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < 1e-15 {
            break;
        }
    }
    h * (-x + a * x.ln() - ln_gamma(a)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() <= tol * (1.0 + b.abs()),
            "{a} !~ {b} (tol {tol})"
        );
    }

    #[test]
    fn ln_gamma_integers_match_factorials() {
        // Γ(n) = (n−1)!
        let mut fact = 1.0f64;
        for n in 1..=15u32 {
            close(ln_gamma(n as f64), fact.ln(), 1e-12);
            fact *= n as f64;
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = √π
        close(ln_gamma(0.5), 0.5 * std::f64::consts::PI.ln(), 1e-12);
        // Γ(3/2) = √π / 2
        close(
            ln_gamma(1.5),
            (std::f64::consts::PI.sqrt() / 2.0).ln(),
            1e-12,
        );
    }

    #[test]
    fn ln_gamma_reflection_region() {
        // Γ(0.25) = 3.6256099082219083119...
        close(ln_gamma(0.25), 3.625_609_908_221_908_f64.ln(), 1e-10);
    }

    #[test]
    fn reg_gamma_bounds_and_monotone() {
        for &a in &[0.5, 1.0, 2.5, 10.0, 50.0] {
            assert_eq!(reg_gamma_lower(a, 0.0), 0.0);
            let mut prev = 0.0;
            for i in 1..200 {
                let x = i as f64 * 0.25;
                let p = reg_gamma_lower(a, x);
                assert!((0.0..=1.0).contains(&p));
                assert!(p + 1e-12 >= prev, "not monotone at a={a}, x={x}");
                prev = p;
            }
            close(reg_gamma_lower(a, 1e4), 1.0, 1e-9);
        }
    }

    #[test]
    fn reg_gamma_exponential_special_case() {
        // P(1, x) = 1 − e^{−x}
        for i in 1..50 {
            let x = i as f64 * 0.3;
            close(reg_gamma_lower(1.0, x), 1.0 - (-x).exp(), 1e-12);
        }
    }

    #[test]
    fn reg_gamma_reference_values() {
        // SciPy: gammainc(2.5, 3.0) = 0.6937810816221104
        close(reg_gamma_lower(2.5, 3.0), 0.693_781_081_622_110_4, 1e-10);
        // SciPy: gammainc(10, 10) = 0.5420702855281478
        close(reg_gamma_lower(10.0, 10.0), 0.542_070_285_528_147_8, 1e-10);
        // SciPy: gammaincc(0.5, 2.0) = 0.04550026389635842
        close(reg_gamma_upper(0.5, 2.0), 0.045_500_263_896_358_42, 1e-10);
    }

    #[test]
    fn lower_plus_upper_is_one() {
        for &a in &[0.3, 1.0, 4.2, 17.0] {
            for i in 0..60 {
                let x = i as f64 * 0.7;
                close(reg_gamma_lower(a, x) + reg_gamma_upper(a, x), 1.0, 1e-12);
            }
        }
    }

    #[test]
    #[should_panic]
    fn reg_gamma_rejects_nonpositive_shape() {
        reg_gamma_lower(0.0, 1.0);
    }
}
