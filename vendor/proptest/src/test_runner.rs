//! Configuration, errors, and the deterministic RNG driving generation.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// Per-test configuration. Only `cases` is honored by this vendored build.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// How many generated inputs each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Why a single generated case failed.
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failed case with the given reason (upstream's `Fail` variant).
    pub fn fail(reason: impl std::fmt::Display) -> Self {
        Self(reason.to_string())
    }

    /// Upstream's "discard this input" signal; treated as a failure here
    /// because this vendored build never discards.
    pub fn reject(reason: impl std::fmt::Display) -> Self {
        Self(format!("rejected: {reason}"))
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Outcome of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic generation RNG: seeded from the test's name, so every run
/// of a binary replays the identical input sequence (no flaky properties,
/// and a failure report is always reproducible).
#[derive(Clone, Debug)]
pub struct TestRng(SmallRng);

impl TestRng {
    /// RNG for the named test.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name picks a stable per-test seed.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self(SmallRng::seed_from_u64(h))
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform draw from `[0, span)`; exactly uniform (bitmask rejection).
    pub fn below(&mut self, span: u64) -> u64 {
        use rand::Rng;
        self.0.gen_range(0..span)
    }
}
