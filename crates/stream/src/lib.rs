//! Stream substrate for the `swsample` workspace.
//!
//! The paper studies an abstract data-stream model; this crate provides the
//! concrete machinery the reproduction runs on:
//!
//! * [`event`] — the stream event model: values paired with arrival
//!   timestamps, in the two window disciplines the paper treats
//!   (sequence-based and timestamp-based).
//! * [`values`] — value generators: uniform, Zipf (self-implemented inverse
//!   CDF), round-robin, constant.
//! * [`arrivals`] — arrival processes for timestamp-based windows: steady
//!   (one item per tick), bursty (random burst sizes per tick), and the
//!   *adversarial* schedule from Lemma 3.10 (`2^{2t₀−i}` items at tick `i`)
//!   used to exhibit the `Ω(log n)` lower bound.
//! * [`graph`] — random-graph edge streams with planted triangles for the
//!   Corollary 5.3 experiments, plus exact in-window triangle counting.
//! * [`engine`] — the serving-shaped side: [`MultiStreamEngine`], a
//!   sharded registry of independent per-key window samplers built
//!   lazily from one `SamplerSpec` template, with keyed batched
//!   ingestion and fleet-level memory accounting.
//!
//! All generators are deterministic given a seed, so every experiment in
//! `EXPERIMENTS.md` is exactly reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrivals;
pub mod engine;
pub mod event;
pub mod graph;
pub mod values;

pub use arrivals::{AdversarialStream, BurstyArrivals, SteadyArrivals, TimedEvent};
pub use engine::{
    FxBuildHasher, FxHasher, MultiStreamEngine, ParallelStats, WorkerPanic, WorkerStats,
};
pub use event::{Timestamp, WindowSpec};
pub use graph::{count_triangles, Edge, EdgeStreamGen};
pub use values::{ConstantGen, RoundRobinGen, UniformGen, ValueGen, ZipfGen};
