//! [`DurableEngine`]: a [`MultiStreamEngine`] whose ingest batches are
//! written ahead to a [`SegmentLog`] and whose per-key states are
//! periodically snapshotted, giving bit-identical crash recovery.
//!
//! The write path is *append, then apply*: a batch reaches the
//! in-memory fleet only after its WAL record is buffered. Combined with
//! the snapshot's `wal_seq` watermark (recorded only after an fsync),
//! recovery never observes a state that is ahead of the log.
//!
//! Bit-identity holds across shard counts, thread counts, and fleet
//! backends, because per-key samplers derive their RNG streams from the
//! key and consume events in batch order — the exact property the
//! engine's `save_states`/`restore_states` round-trip preserves. A
//! resumed run may therefore also *rescale*: reopen with different
//! shard/thread counts (or the other backend) and continue, and every
//! sample stays what it would have been.

use std::hash::Hash;
use std::path::{Path, PathBuf};

use swsample_core::fault::{FaultInjector, FaultSchedule, FaultSite};
use swsample_core::state::StateCodec;
use swsample_core::{FleetBackend, SamplerSpec};
use swsample_stream::MultiStreamEngine;

use crate::batch::{decode_batch, encode_batch};
use crate::failpoint::{FailPlan, CRASH_EXIT_CODE, SHUTDOWN_EXIT_CODE};
use crate::snapshot::{self, SnapshotMeta};
use crate::wal::{SegmentLog, DEFAULT_SEGMENT_BYTES};
use crate::DurableError;

/// A keyed ingest event, matching the stream engine's batch element.
pub type Event<K, T> = (K, u64, T);

/// Tuning and fault-injection knobs for a [`DurableEngine`].
#[derive(Debug, Clone)]
pub struct DurableOptions {
    /// WAL segment-roll (and therefore fsync) threshold in bytes.
    pub segment_bytes: u64,
    /// Automatically snapshot after this many ingest batches
    /// (`None` = only on explicit [`DurableEngine::snapshot`] calls).
    pub snapshot_every: Option<u64>,
    /// Fault-injection plan for *hard* faults — crash, torn tail,
    /// snapshot corruption, permanent disk-full (default: no faults).
    pub fail: FailPlan,
    /// Seeded schedule of *transient* faults (`wal-append`,
    /// `wal-fsync` sites): injected I/O errors the engine rides out
    /// with a bounded retry (default: no faults).
    pub faults: FaultSchedule,
    /// How many consecutive transient faults on one operation the
    /// engine retries before surfacing an I/O error.
    pub transient_retry_limit: u32,
}

impl Default for DurableOptions {
    fn default() -> Self {
        Self {
            segment_bytes: DEFAULT_SEGMENT_BYTES,
            snapshot_every: None,
            fail: FailPlan::default(),
            faults: FaultSchedule::default(),
            transient_retry_limit: 4,
        }
    }
}

/// Overrides applied when reopening a durable fleet — the live-rescale
/// path. Fields left `None` keep the on-disk configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct ResumeOverrides {
    /// Rebuild with this many shards.
    pub shards: Option<usize>,
    /// Rebuild with this many worker threads.
    pub threads: Option<usize>,
    /// Rebuild on this fleet backend.
    pub backend: Option<FleetBackend>,
}

/// A crash-recoverable, rescalable keyed sampling fleet. See the
/// [module docs](self) and the crate docs for the on-disk layout.
#[derive(Debug)]
pub struct DurableEngine<K: Clone, T: Clone> {
    engine: MultiStreamEngine<K, T>,
    wal: SegmentLog,
    dir: PathBuf,
    opts: DurableOptions,
    /// Successful WAL appends this process (drives failpoints).
    appends: u64,
    batches_since_snapshot: u64,
    /// Decides which append/fsync operations transiently fail.
    injector: FaultInjector,
    /// Transient injected faults absorbed by the retry policy.
    transient_retries: u64,
}

impl<K, T> DurableEngine<K, T>
where
    K: StateCodec + Hash + Eq + Clone + Send + Sync + 'static,
    T: StateCodec + Clone + Send + Sync + 'static,
{
    /// Start a fresh durable fleet in `dir` (created if missing; must
    /// not already hold a WAL or snapshots). Writes an initial empty
    /// snapshot at sequence 0 so the directory always records its
    /// configuration.
    ///
    /// The sampler factory is [`swsample_baselines::spec::build`], so
    /// every spec-expressible family — paper, reservoir-l, chain,
    /// priority, priority top-k, window buffer — is durable.
    pub fn create(
        dir: impl Into<PathBuf>,
        template: SamplerSpec,
        shards: usize,
        threads: usize,
        backend: FleetBackend,
        opts: DurableOptions,
    ) -> Result<Self, DurableError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        if let Some((_, path)) = snapshot::list_snapshots(&dir)?.first() {
            return Err(DurableError::Config(format!(
                "refusing to create a fresh durable fleet over existing snapshot {}",
                path.display()
            )));
        }
        let engine = MultiStreamEngine::with_backend(
            template,
            shards,
            swsample_baselines::spec::build::<T>,
            threads,
            backend,
        )
        .map_err(|e| DurableError::Config(e.to_string()))?;
        let wal = SegmentLog::create(&dir, opts.segment_bytes)?;
        let injector = FaultInjector::new(opts.faults.clone());
        let mut this = Self {
            engine,
            wal,
            dir,
            opts,
            appends: 0,
            batches_since_snapshot: 0,
            injector,
            transient_retries: 0,
        };
        this.snapshot()?;
        Ok(this)
    }

    /// Recover a durable fleet from `dir`: newest fully-valid snapshot,
    /// then replay of every WAL record at or past its watermark. The
    /// result is bit-identical to the uncrashed run up to the last
    /// durable record.
    pub fn open(dir: impl Into<PathBuf>, opts: DurableOptions) -> Result<Self, DurableError> {
        Self::open_with(dir, opts, ResumeOverrides::default())
    }

    /// [`open`](Self::open) with shard/thread/backend overrides — the
    /// rescale-on-resume path. Sample distributions are unaffected by
    /// any override.
    pub fn open_with(
        dir: impl Into<PathBuf>,
        opts: DurableOptions,
        overrides: ResumeOverrides,
    ) -> Result<Self, DurableError> {
        let dir = dir.into();
        let (snap_path, meta, states) = snapshot::latest_valid::<K, T>(&dir)?.ok_or_else(|| {
            DurableError::Config(format!(
                "{} is not a durable fleet directory (no snapshot found)",
                dir.display()
            ))
        })?;
        let template: SamplerSpec = meta.template.parse().map_err(|e| DurableError::Corrupt {
            file: snap_path.clone(),
            detail: format!("unparseable template `{}`: {e}", meta.template),
        })?;
        let backend: FleetBackend = match overrides.backend {
            Some(b) => b,
            None => meta.backend.parse().map_err(|e| DurableError::Corrupt {
                file: snap_path.clone(),
                detail: format!("unparseable backend `{}`: {e}", meta.backend),
            })?,
        };
        let shards = overrides.shards.unwrap_or(meta.shards as usize);
        let threads = overrides.threads.unwrap_or(meta.threads as usize);
        let mut engine = MultiStreamEngine::with_backend(
            template,
            shards,
            swsample_baselines::spec::build::<T>,
            threads,
            backend,
        )
        .map_err(|e| DurableError::Config(e.to_string()))?;
        engine.restore_states(states)?;
        let injector = FaultInjector::new(opts.faults.clone());
        let (wal, records) = SegmentLog::open(&dir, opts.segment_bytes)?;
        for (seq, payload) in &records {
            if *seq < meta.wal_seq {
                continue;
            }
            let batch = decode_batch::<K, T>(payload).map_err(|e| DurableError::Corrupt {
                file: dir.join("<wal>"),
                detail: format!("record {seq}: {e}"),
            })?;
            engine.ingest_parallel(&batch);
        }
        Ok(Self {
            engine,
            wal,
            dir,
            opts,
            appends: 0,
            batches_since_snapshot: 0,
            injector,
            transient_retries: 0,
        })
    }

    /// Pass one faultable operation through the transient-fault
    /// schedule at `site`, retrying boundedly: each consecutive
    /// injected failure consumes another retry until
    /// [`DurableOptions::transient_retry_limit`] is exhausted, at which
    /// point the error is surfaced as a real I/O failure.
    fn ride_out_transients(&mut self, site: FaultSite, what: &str) -> Result<(), DurableError> {
        let mut attempts = 0u32;
        while self.injector.check(site).is_some() {
            self.transient_retries += 1;
            attempts += 1;
            if attempts > self.opts.transient_retry_limit {
                return Err(DurableError::Io(std::io::Error::other(format!(
                    "transient {what} failure persisted through {attempts} attempts (fault injection)"
                ))));
            }
        }
        Ok(())
    }

    /// Append `batch` to the WAL, apply it to the fleet, and snapshot if
    /// the automatic interval elapsed. Returns the batch's WAL sequence
    /// number. Empty batches are not logged.
    pub fn ingest(&mut self, batch: &[Event<K, T>]) -> Result<Option<u64>, DurableError> {
        if batch.is_empty() {
            return Ok(None);
        }
        if let Some(limit) = self.opts.fail.disk_full_after_appends {
            if self.appends >= limit {
                return Err(DurableError::Io(std::io::Error::other(
                    "synthetic disk-full (failpoint)",
                )));
            }
        }
        self.ride_out_transients(FaultSite::WalAppend, "WAL append")?;
        let payload = encode_batch(batch);
        let seq = self.wal.append(&payload)?;
        self.appends += 1;
        if self.opts.fail.kill_after_appends == Some(self.appends) {
            if let Some(bytes) = self.opts.fail.torn_tail_bytes {
                let _ = self.wal.inject_torn_tail(bytes);
            } else {
                let _ = self.wal.sync();
            }
            eprintln!(
                "swsample-durable: failpoint kill after {} appends (exit {CRASH_EXIT_CODE})",
                self.appends
            );
            std::process::exit(CRASH_EXIT_CODE);
        }
        self.engine.ingest_parallel(batch);
        self.batches_since_snapshot += 1;
        if let Some(every) = self.opts.snapshot_every {
            if self.batches_since_snapshot >= every.max(1) {
                self.snapshot()?;
            }
        }
        if self.opts.fail.shutdown_after_appends == Some(self.appends) {
            // Graceful-shutdown failpoint: unlike the kill (which exits
            // *before* apply, leaving un-applied durable records for
            // replay), this takes the orderly exit path — final
            // snapshot, then a distinct exit code.
            self.close()?;
            eprintln!(
                "swsample-durable: failpoint shutdown after {} appends (exit {SHUTDOWN_EXIT_CODE})",
                self.appends
            );
            std::process::exit(SHUTDOWN_EXIT_CODE);
        }
        Ok(Some(seq))
    }

    /// Graceful shutdown: fsync the WAL and write a final snapshot, so
    /// a reopen restores from the snapshot alone with no replay. This
    /// is what SIGINT handlers and server shutdown call; dropping the
    /// engine without it is still safe (crash recovery replays the
    /// log) but leaves replay work for the next open.
    pub fn close(&mut self) -> Result<PathBuf, DurableError> {
        self.snapshot()
    }

    /// Fsync the WAL, then write a snapshot of every key's state with
    /// the post-sync sequence watermark. Atomic: a crash mid-write
    /// leaves the previous snapshot as the recovery point.
    pub fn snapshot(&mut self) -> Result<PathBuf, DurableError> {
        self.ride_out_transients(FaultSite::WalFsync, "WAL fsync")?;
        self.wal.sync()?;
        let states = self.engine.save_states()?;
        let meta = SnapshotMeta {
            template: self.engine.template().to_string(),
            backend: self.engine.backend().token().to_string(),
            shards: self.engine.num_shards() as u64,
            threads: self.engine.num_threads() as u64,
            wal_seq: self.wal.next_seq(),
            keys: states.len() as u64,
        };
        let path = snapshot::write_snapshot(&self.dir, &meta, &states)?;
        if let Some(offset) = self.opts.fail.corrupt_snapshot_byte.take() {
            let mut bytes = std::fs::read(&path)?;
            if !bytes.is_empty() {
                let at = (offset as usize).min(bytes.len() - 1);
                bytes[at] ^= 0xFF;
                std::fs::write(&path, bytes)?;
                eprintln!(
                    "swsample-durable: failpoint corrupted snapshot byte {offset} in {}",
                    path.display()
                );
            }
        }
        self.batches_since_snapshot = 0;
        Ok(path)
    }

    /// Flush and fsync the WAL without snapshotting — everything
    /// ingested so far becomes durable (recoverable by replay).
    pub fn sync(&mut self) -> Result<(), DurableError> {
        self.ride_out_transients(FaultSite::WalFsync, "WAL fsync")?;
        self.wal.sync()
    }

    /// Transient injected append/fsync faults absorbed by the bounded
    /// retry policy so far — the server surfaces this as `wal_retries`.
    pub fn transient_retries(&self) -> u64 {
        self.transient_retries
    }

    /// Live rescale: snapshot-remap-restore the fleet onto a new shard
    /// count, mid-stream, with no change to any sample distribution.
    pub fn set_shards(&mut self, shards: usize) -> Result<(), DurableError> {
        self.engine.set_shards(shards)?;
        Ok(())
    }

    /// Resize the worker pool used for parallel ingestion.
    pub fn set_threads(&mut self, threads: usize) {
        self.engine.set_threads(threads);
    }

    /// The underlying in-memory fleet (read-only: mutating it without
    /// the WAL would break the recovery contract).
    pub fn engine(&self) -> &MultiStreamEngine<K, T> {
        &self.engine
    }

    /// The sequence number the next ingest batch will get — equals the
    /// number of batches ever logged.
    pub fn next_seq(&self) -> u64 {
        self.wal.next_seq()
    }

    /// The durable directory this fleet lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("swsample-durable-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn template() -> SamplerSpec {
        "--window seq --n 32 --mode wr --algo paper --k 3 --seed 11"
            .parse()
            .expect("template")
    }

    fn batches(total: usize) -> Vec<Vec<Event<u64, u64>>> {
        (0..total)
            .map(|b| {
                (0..7u64)
                    .map(|i| {
                        let e = (b as u64) * 7 + i;
                        (e % 13, e, e * 31)
                    })
                    .collect()
            })
            .collect()
    }

    fn fleet_samples(
        engine: &MultiStreamEngine<u64, u64>,
    ) -> Vec<(u64, Option<Vec<swsample_core::Sample<u64>>>)> {
        let mut keys = engine.keys();
        keys.sort_unstable();
        keys.into_iter()
            .map(|k| {
                let s = engine.sample_k(&k);
                (k, s)
            })
            .collect()
    }

    #[test]
    fn reopen_after_clean_shutdown_is_bit_identical() {
        let dir = tmp_dir("clean");
        let mut reference =
            MultiStreamEngine::<u64, u64>::new(template()).expect("reference engine");
        let mut durable = DurableEngine::<u64, u64>::create(
            &dir,
            template(),
            4,
            2,
            FleetBackend::Auto,
            DurableOptions {
                snapshot_every: Some(3),
                ..DurableOptions::default()
            },
        )
        .expect("create");
        for batch in batches(10) {
            reference.ingest(&batch);
            durable.ingest(&batch).expect("ingest");
        }
        durable.sync().expect("sync");
        drop(durable);
        let reopened =
            DurableEngine::<u64, u64>::open(&dir, DurableOptions::default()).expect("open");
        assert_eq!(fleet_samples(reopened.engine()), fleet_samples(&reference));
        assert_eq!(reopened.next_seq(), 10);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn close_writes_a_snapshot_covering_the_whole_log() {
        let dir = tmp_dir("close");
        let mut durable = DurableEngine::<u64, u64>::create(
            &dir,
            template(),
            4,
            2,
            FleetBackend::Auto,
            DurableOptions::default(),
        )
        .expect("create");
        for batch in batches(5) {
            durable.ingest(&batch).expect("ingest");
        }
        durable.close().expect("close");
        drop(durable);
        // The final snapshot's watermark covers every logged batch, so a
        // reopen restores from it alone — no replay work pending.
        let (_, meta, _) = snapshot::latest_valid::<u64, u64>(&dir)
            .expect("scan")
            .expect("snapshot");
        assert_eq!(meta.wal_seq, 5);
        let reopened =
            DurableEngine::<u64, u64>::open(&dir, DurableOptions::default()).expect("open");
        assert_eq!(reopened.next_seq(), 5);
        assert_eq!(reopened.engine().num_keys(), 13);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_full_failpoint_fails_append_but_engine_stays_queryable() {
        let dir = tmp_dir("diskfull");
        let mut durable = DurableEngine::<u64, u64>::create(
            &dir,
            template(),
            2,
            1,
            FleetBackend::Auto,
            DurableOptions {
                fail: "disk-full-after=2".parse().expect("plan"),
                ..DurableOptions::default()
            },
        )
        .expect("create");
        let all = batches(4);
        assert!(durable.ingest(&all[0]).is_ok());
        assert!(durable.ingest(&all[1]).is_ok());
        let err = durable.ingest(&all[2]).expect_err("disk full");
        assert!(matches!(err, DurableError::Io(_)), "got {err:?}");
        // The failed batch was never applied; the fleet still answers.
        assert_eq!(durable.engine().num_keys(), 13);
        assert!(durable.snapshot().is_ok(), "snapshot unaffected");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn transient_append_faults_are_retried_and_counted() {
        let dir = tmp_dir("transient");
        let mut durable = DurableEngine::<u64, u64>::create(
            &dir,
            template(),
            2,
            1,
            FleetBackend::Auto,
            DurableOptions {
                faults: "seed=3,wal-append=1/3,wal-fsync=1/3"
                    .parse()
                    .expect("schedule"),
                ..DurableOptions::default()
            },
        )
        .expect("create");
        let mut reference =
            MultiStreamEngine::<u64, u64>::new(template()).expect("reference engine");
        for batch in batches(40) {
            reference.ingest(&batch);
            durable
                .ingest(&batch)
                .expect("transient faults must be absorbed");
        }
        durable.close().expect("close under fsync faults");
        assert!(
            durable.transient_retries() > 0,
            "a 1/3 schedule over 40 appends must inject"
        );
        // Exactly-once under transient faults: retries never double-apply.
        assert_eq!(fleet_samples(durable.engine()), fleet_samples(&reference));
        drop(durable);
        let reopened =
            DurableEngine::<u64, u64>::open(&dir, DurableOptions::default()).expect("open");
        assert_eq!(fleet_samples(reopened.engine()), fleet_samples(&reference));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn transient_fault_storm_exhausts_the_retry_budget() {
        let dir = tmp_dir("exhaust");
        let mut durable = DurableEngine::<u64, u64>::create(
            &dir,
            template(),
            2,
            1,
            FleetBackend::Auto,
            DurableOptions {
                // 1/1: every append attempt faults — no retry can save it.
                faults: "wal-append=1/1".parse().expect("schedule"),
                transient_retry_limit: 3,
                ..DurableOptions::default()
            },
        )
        .expect("create");
        let err = durable.ingest(&batches(1)[0]).expect_err("must exhaust");
        assert!(
            matches!(&err, DurableError::Io(e) if e.to_string().contains("transient")),
            "got {err:?}"
        );
        // The failed batch never reached the WAL or the fleet.
        assert_eq!(durable.next_seq(), 0);
        assert_eq!(durable.engine().num_keys(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn create_refuses_existing_directory() {
        let dir = tmp_dir("exists");
        let durable = DurableEngine::<u64, u64>::create(
            &dir,
            template(),
            2,
            1,
            FleetBackend::Auto,
            DurableOptions::default(),
        )
        .expect("create");
        drop(durable);
        assert!(matches!(
            DurableEngine::<u64, u64>::create(
                &dir,
                template(),
                2,
                1,
                FleetBackend::Auto,
                DurableOptions::default(),
            ),
            Err(DurableError::Config(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn initial_snapshot_records_config() {
        let dir = tmp_dir("config");
        let durable = DurableEngine::<u64, u64>::create(
            &dir,
            template(),
            8,
            4,
            FleetBackend::Erased,
            DurableOptions::default(),
        )
        .expect("create");
        drop(durable);
        let (_, meta, states) = snapshot::latest_valid::<u64, u64>(&dir)
            .expect("scan")
            .expect("snapshot");
        assert!(states.is_empty());
        assert_eq!(meta.template, template().to_string());
        assert_eq!(meta.backend, "erased");
        assert_eq!(meta.shards, 8);
        assert_eq!(meta.threads, 4);
        assert_eq!(meta.wal_seq, 0);
        assert_eq!(meta.keys, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
