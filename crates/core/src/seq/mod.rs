//! Sequence-based (fixed-size) windows — §2 of the paper.
//!
//! The window is the last `n` arrivals. Both samplers rest on the
//! *equivalent-width partition* idea (§1.3.1): the stream is cut into
//! buckets `B(in, (i+1)n)` of exactly the window size; at any moment the
//! window intersects at most the most recent *complete* bucket `U` and the
//! *partial* bucket `V` still being filled, and a window sample can be
//! assembled from just the per-bucket reservoir samples:
//!
//! * with replacement ([`SeqSamplerWr`], Theorem 2.1): if `U`'s sample is
//!   not expired it *is* the window sample; otherwise `V`'s sample is.
//! * without replacement ([`SeqSamplerWor`], Theorem 2.2): keep the
//!   non-expired part of `U`'s k-sample and top it up with a random
//!   same-size subset of `V`'s k-sample.
//!
//! Both use `O(k)` words, deterministically.

mod wor;
mod wr;

pub(crate) use wor::choose_distinct;
pub use wor::SeqSamplerWor;
pub use wr::SeqSamplerWr;
