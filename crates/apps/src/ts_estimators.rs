//! Frequency moments and entropy over **timestamp-based** windows — the
//! full strength of Corollaries 5.2 and 5.4.
//!
//! Two extra ingredients beyond the sequence-window estimators:
//!
//! 1. the suffix statistic `r` rides on the timestamp sampler's covering
//!    decomposition (each bucket's `R` sample carries its tracker state,
//!    surviving merges — `swsample-core`'s tracked `TsSamplerWr`), and
//! 2. the window size `n(t)` — which is *not computable exactly* in
//!    sublinear space for timestamp windows — is replaced by the `(1±ε)`
//!    DGIM estimate from `swsample-counting`, the paper's reference \[31\].
//!
//! The estimator error therefore has two parts: the AMS/CCM sampling error
//! `O(1/√s₁)` plus a multiplicative `(1±ε)` from the counter; both shrink
//! with their respective parameters. Total memory stays polylogarithmic, as
//! Theorem 5.1 promises (the `log n` overhead of the timestamp model).

use crate::moments::median_of_means;
use rand::Rng;
use swsample_core::track::OccurrenceTracker;
use swsample_core::ts::TsSamplerWr;
use swsample_core::{MemoryWords, WindowSampler};
use swsample_counting::WindowCounter;

/// AMS estimator for `F_k` over a timestamp window of width `t0`.
#[derive(Debug, Clone)]
pub struct TsMomentEstimator<R> {
    moment: u32,
    s1: usize,
    s2: usize,
    sampler: TsSamplerWr<u64, R, OccurrenceTracker>,
    counter: WindowCounter,
}

impl<R: Rng + 'static> TsMomentEstimator<R> {
    /// Estimator for `F_moment` over the last `t0` ticks with `s1·s2`
    /// samples and a `(1±epsilon)` window-size counter.
    pub fn new(t0: u64, moment: u32, s1: usize, s2: usize, epsilon: f64, rng: R) -> Self {
        assert!(moment >= 1 && s1 >= 1 && s2 >= 1);
        Self {
            moment,
            s1,
            s2,
            sampler: TsSamplerWr::with_tracker(t0, s1 * s2, rng, OccurrenceTracker),
            counter: WindowCounter::with_epsilon(t0, epsilon),
        }
    }

    /// Advance the shared clock.
    pub fn advance_time(&mut self, now: u64) {
        self.sampler.advance_time(now);
        self.counter.advance_time(now);
    }

    /// Feed the next arrival at the current tick.
    pub fn insert(&mut self, value: u64) {
        self.sampler.insert(value);
        self.counter.insert();
    }

    /// Current estimate of `F_k`; `None` when the window is empty.
    pub fn estimate(&mut self) -> Option<f64> {
        let n = self.counter.estimate();
        if n == 0 {
            return None;
        }
        let picks = self.sampler.sample_k_with_stats()?;
        let k = self.moment as i32;
        let basics: Vec<f64> = picks
            .iter()
            .map(|(_, (_, r))| {
                let r = *r as f64;
                n as f64 * (r.powi(k) - (r - 1.0).powi(k))
            })
            .collect();
        Some(median_of_means(&basics, self.s1, self.s2))
    }

    /// The `(1±ε)` window-size estimate feeding the estimator.
    pub fn window_size_estimate(&self) -> u64 {
        self.counter.estimate()
    }
}

impl<R> MemoryWords for TsMomentEstimator<R> {
    fn memory_words(&self) -> usize {
        self.sampler.memory_words()
            + self.counter.memory_words()
            + self.s1 * self.s2 * 2 // tracker stats
            + 3
    }
}

/// CCM entropy estimator over a timestamp window of width `t0`.
#[derive(Debug, Clone)]
pub struct TsEntropyEstimator<R> {
    s1: usize,
    s2: usize,
    sampler: TsSamplerWr<u64, R, OccurrenceTracker>,
    counter: WindowCounter,
}

impl<R: Rng + 'static> TsEntropyEstimator<R> {
    /// Estimator over the last `t0` ticks with `s1·s2` samples and a
    /// `(1±epsilon)` window-size counter.
    pub fn new(t0: u64, s1: usize, s2: usize, epsilon: f64, rng: R) -> Self {
        assert!(s1 >= 1 && s2 >= 1);
        Self {
            s1,
            s2,
            sampler: TsSamplerWr::with_tracker(t0, s1 * s2, rng, OccurrenceTracker),
            counter: WindowCounter::with_epsilon(t0, epsilon),
        }
    }

    /// Advance the shared clock.
    pub fn advance_time(&mut self, now: u64) {
        self.sampler.advance_time(now);
        self.counter.advance_time(now);
    }

    /// Feed the next arrival at the current tick.
    pub fn insert(&mut self, value: u64) {
        self.sampler.insert(value);
        self.counter.insert();
    }

    /// Current entropy estimate (bits); `None` when the window is empty.
    pub fn estimate(&mut self) -> Option<f64> {
        let n = self.counter.estimate() as f64;
        if n < 1.0 {
            return None;
        }
        let picks = self.sampler.sample_k_with_stats()?;
        let basics: Vec<f64> = picks
            .iter()
            .map(|(_, (_, r))| {
                // The DGIM estimate can sit slightly below the true count;
                // clamp so the logs stay well-defined.
                let r = (*r as f64).min(n);
                let hi = r * (n / r).log2();
                let lo = if r > 1.0 {
                    (r - 1.0) * (n / (r - 1.0)).log2()
                } else {
                    0.0
                };
                hi - lo
            })
            .collect();
        Some(median_of_means(&basics, self.s1, self.s2))
    }
}

impl<R> MemoryWords for TsEntropyEstimator<R> {
    fn memory_words(&self) -> usize {
        self.sampler.memory_words() + self.counter.memory_words() + self.s1 * self.s2 * 2 + 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactWindow;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use swsample_stats::OnlineMoments;

    /// Drive estimator + an exact reference over a steady stream (1/tick),
    /// so the exact window is the last `t0` values.
    fn steady_f2(
        t0: u64,
        ticks: u64,
        s1: usize,
        seeds: u64,
        values: impl Fn(u64) -> u64,
    ) -> (f64, f64) {
        let mut exact = ExactWindow::new(t0 as usize);
        for tick in 0..ticks {
            exact.insert(values(tick));
        }
        let truth = exact.moment(2);
        let mut acc = OnlineMoments::new();
        for seed in 0..seeds {
            let mut est = TsMomentEstimator::new(t0, 2, s1, 3, 0.05, SmallRng::seed_from_u64(seed));
            for tick in 0..ticks {
                est.advance_time(tick);
                est.insert(values(tick));
            }
            acc.push(est.estimate().expect("nonempty"));
        }
        (acc.mean(), truth)
    }

    #[test]
    fn f2_converges_on_timestamp_windows() {
        let (mean, truth) = steady_f2(256, 700, 64, 40, |t| t % 11);
        let rel = (mean - truth).abs() / truth;
        assert!(rel < 0.12, "TS F2 mean {mean} vs exact {truth} (rel {rel})");
    }

    #[test]
    fn f1_matches_window_size_estimate() {
        // F1 = n: every basic estimator equals n̂ exactly.
        let mut est = TsMomentEstimator::new(64, 1, 4, 1, 0.05, SmallRng::seed_from_u64(1));
        for tick in 0..300u64 {
            est.advance_time(tick);
            est.insert(tick);
        }
        let f1 = est.estimate().expect("nonempty");
        let n_hat = est.window_size_estimate() as f64;
        assert_eq!(f1, n_hat);
        // And n̂ is within 5% + 1 of the true 64.
        assert!((n_hat - 64.0).abs() <= 0.05 * 64.0 + 1.0, "n̂ = {n_hat}");
    }

    #[test]
    fn entropy_converges_on_timestamp_windows() {
        let t0 = 256u64;
        let mut exact = ExactWindow::new(t0 as usize);
        for tick in 0..700u64 {
            exact.insert(tick % 16);
        }
        let truth = exact.entropy();
        let mut acc = OnlineMoments::new();
        for seed in 0..30 {
            let mut est = TsEntropyEstimator::new(t0, 64, 3, 0.05, SmallRng::seed_from_u64(seed));
            for tick in 0..700u64 {
                est.advance_time(tick);
                est.insert(tick % 16);
            }
            acc.push(est.estimate().expect("nonempty"));
        }
        assert!(
            (acc.mean() - truth).abs() < 0.35,
            "TS entropy mean {} vs exact {truth}",
            acc.mean()
        );
    }

    #[test]
    fn empty_window_returns_none() {
        let mut est = TsMomentEstimator::new(4, 2, 2, 1, 0.1, SmallRng::seed_from_u64(2));
        assert!(est.estimate().is_none());
        est.advance_time(0);
        est.insert(1);
        est.advance_time(1000);
        assert!(est.estimate().is_none());
    }

    #[test]
    fn memory_is_polylogarithmic() {
        let mut est = TsMomentEstimator::new(1024, 2, 8, 3, 0.1, SmallRng::seed_from_u64(3));
        for tick in 0..4096u64 {
            est.advance_time(tick);
            for _ in 0..4 {
                est.insert(tick % 100);
            }
        }
        // Window holds 4096 elements; buffering would need ≥ 8192 words.
        assert!(est.memory_words() < 8192, "memory {}", est.memory_words());
    }

    #[test]
    fn handles_bursts_and_gaps() {
        let mut est = TsEntropyEstimator::new(32, 16, 3, 0.1, SmallRng::seed_from_u64(4));
        let mut rng = SmallRng::seed_from_u64(5);
        use rand::Rng as _;
        for tick in (0..500u64).step_by(3) {
            est.advance_time(tick);
            for _ in 0..rng.gen_range(0..6u64) {
                est.insert(rng.gen_range(0..8u64));
            }
            // Must never panic, and must report Some iff window non-empty.
            let _ = est.estimate();
        }
    }
}
