//! Value generators: what the stream elements *are*.
//!
//! The paper's samplers are value-agnostic, but the §5 applications
//! (frequency moments, entropy) are sensitive to the value distribution, so
//! the experiments sweep uniform and Zipf workloads.

use rand::Rng;

/// A deterministic-given-seed source of stream values over `[0, domain)`.
pub trait ValueGen {
    /// Produce the next value.
    fn next_value<R: Rng>(&mut self, rng: &mut R) -> u64;
    /// Size of the value domain `m` (values are `0..m`).
    fn domain(&self) -> u64;
}

/// Uniform values over `0..domain`.
#[derive(Debug, Clone)]
pub struct UniformGen {
    domain: u64,
}

impl UniformGen {
    /// Uniform generator over `0..domain`.
    pub fn new(domain: u64) -> Self {
        assert!(domain > 0, "UniformGen: empty domain");
        Self { domain }
    }
}

impl ValueGen for UniformGen {
    fn next_value<R: Rng>(&mut self, rng: &mut R) -> u64 {
        rng.gen_range(0..self.domain)
    }
    fn domain(&self) -> u64 {
        self.domain
    }
}

/// Zipf-distributed values: `P(v = i) ∝ 1/(i+1)^theta` for `i ∈ 0..domain`.
///
/// Implemented by inverse transform over a precomputed CDF (the domains the
/// experiments use are ≤ ~1e6, so the table is cheap and exact).
#[derive(Debug, Clone)]
pub struct ZipfGen {
    cdf: Vec<f64>,
    theta: f64,
}

impl ZipfGen {
    /// Zipf generator with exponent `theta > 0` over `0..domain`.
    pub fn new(domain: u64, theta: f64) -> Self {
        assert!(domain > 0, "ZipfGen: empty domain");
        assert!(
            theta > 0.0 && theta.is_finite(),
            "ZipfGen: bad theta {theta}"
        );
        let mut cdf = Vec::with_capacity(domain as usize);
        let mut acc = 0.0;
        for i in 0..domain {
            acc += 1.0 / ((i + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let z = acc;
        for c in &mut cdf {
            *c /= z;
        }
        // Guard against FP round-off on the last entry.
        *cdf.last_mut().expect("nonempty") = 1.0;
        Self { cdf, theta }
    }

    /// The skew exponent.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Probability of value `i`.
    pub fn pmf(&self, i: u64) -> f64 {
        let i = i as usize;
        assert!(i < self.cdf.len());
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }
}

impl ValueGen for ZipfGen {
    fn next_value<R: Rng>(&mut self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen_range(0.0..1.0);
        // First index whose CDF is >= u.
        self.cdf.partition_point(|&c| c < u) as u64
    }
    fn domain(&self) -> u64 {
        self.cdf.len() as u64
    }
}

/// Deterministic round-robin values `0, 1, …, domain−1, 0, 1, …`.
///
/// Handy in tests: with a round-robin stream the exact multiset of values in
/// any window is known in closed form.
#[derive(Debug, Clone)]
pub struct RoundRobinGen {
    domain: u64,
    next: u64,
}

impl RoundRobinGen {
    /// Round-robin generator over `0..domain`.
    pub fn new(domain: u64) -> Self {
        assert!(domain > 0, "RoundRobinGen: empty domain");
        Self { domain, next: 0 }
    }
}

impl ValueGen for RoundRobinGen {
    fn next_value<R: Rng>(&mut self, _rng: &mut R) -> u64 {
        let v = self.next;
        self.next = (self.next + 1) % self.domain;
        v
    }
    fn domain(&self) -> u64 {
        self.domain
    }
}

/// A constant value; the degenerate distribution (entropy 0, `F_k = N^k`).
#[derive(Debug, Clone)]
pub struct ConstantGen {
    value: u64,
}

impl ConstantGen {
    /// Generator that always yields `value`.
    pub fn new(value: u64) -> Self {
        Self { value }
    }
}

impl ValueGen for ConstantGen {
    fn next_value<R: Rng>(&mut self, _rng: &mut R) -> u64 {
        self.value
    }
    fn domain(&self) -> u64 {
        self.value + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_stays_in_domain() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut g = UniformGen::new(17);
        for _ in 0..1000 {
            assert!(g.next_value(&mut rng) < 17);
        }
    }

    #[test]
    fn uniform_covers_domain() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut g = UniformGen::new(8);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[g.next_value(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn zipf_pmf_sums_to_one_and_is_decreasing() {
        let g = ZipfGen::new(100, 1.2);
        let total: f64 = (0..100).map(|i| g.pmf(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for i in 1..100 {
            assert!(g.pmf(i) <= g.pmf(i - 1) + 1e-12);
        }
    }

    #[test]
    fn zipf_empirical_head_matches_pmf() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut g = ZipfGen::new(50, 1.0);
        let n = 200_000;
        let mut count0 = 0u64;
        for _ in 0..n {
            if g.next_value(&mut rng) == 0 {
                count0 += 1;
            }
        }
        let emp = count0 as f64 / n as f64;
        let exp = g.pmf(0);
        assert!((emp - exp).abs() < 0.01, "empirical {emp} vs pmf {exp}");
    }

    #[test]
    fn zipf_stays_in_domain() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut g = ZipfGen::new(10, 2.0);
        for _ in 0..10_000 {
            assert!(g.next_value(&mut rng) < 10);
        }
    }

    #[test]
    fn round_robin_cycles() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut g = RoundRobinGen::new(3);
        let seq: Vec<u64> = (0..7).map(|_| g.next_value(&mut rng)).collect();
        assert_eq!(seq, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn constant_is_constant() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut g = ConstantGen::new(9);
        for _ in 0..5 {
            assert_eq!(g.next_value(&mut rng), 9);
        }
    }
}
