//! Sampling **with replacement** from sequence-based windows (Theorem 2.1).

use crate::memory::MemoryWords;
use crate::sample::Sample;
use crate::track::{NullTracker, SampleTracker};
use crate::traits::WindowSampler;
use rand::Rng;

/// One independent single-sample instance: the reservoir candidate of the
/// partial bucket plus the retained sample of the last complete bucket.
#[derive(Debug, Clone)]
struct Instance<T, S> {
    /// Sample of the most recent complete bucket (the paper's `X_U`).
    prev: Option<(Sample<T>, S)>,
    /// Reservoir candidate of the partial bucket (the paper's `X_V`).
    cur: Option<(Sample<T>, S)>,
}

impl<T, S> Instance<T, S> {
    fn new() -> Self {
        Self {
            prev: None,
            cur: None,
        }
    }
}

/// `k` independent uniform samples, *with replacement*, over the last `n`
/// arrivals — Theorem 2.1, `O(k)` memory words, deterministic.
///
/// The sampler is generic over a [`SampleTracker`] so sampling-based
/// algorithms (Theorem 5.1) can carry a suffix statistic with each
/// candidate; the default [`NullTracker`] costs nothing.
///
/// ```
/// use swsample_core::seq::SeqSamplerWr;
/// use swsample_core::WindowSampler;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut s = SeqSamplerWr::new(100, 3, SmallRng::seed_from_u64(1));
/// for i in 0..1_000u64 {
///     s.insert(i);
/// }
/// for sample in s.sample_k().unwrap() {
///     assert!(sample.index() >= 900); // inside the window
/// }
/// ```
#[derive(Debug, Clone)]
pub struct SeqSamplerWr<T, R, K: SampleTracker<T> = NullTracker> {
    n: u64,
    /// Total arrivals so far (`N` in the paper).
    count: u64,
    rng: R,
    tracker: K,
    instances: Vec<Instance<T, K::Stat>>,
}

impl<T: Clone, R: Rng> SeqSamplerWr<T, R, NullTracker> {
    /// Sampler for windows of the last `n ≥ 1` arrivals maintaining `k ≥ 1`
    /// independent samples.
    pub fn new(n: u64, k: usize, rng: R) -> Self {
        Self::with_tracker(n, k, rng, NullTracker)
    }
}

impl<T: Clone, R: Rng, K: SampleTracker<T>> SeqSamplerWr<T, R, K> {
    /// Like [`SeqSamplerWr::new`], with a custom per-candidate tracker.
    pub fn with_tracker(n: u64, k: usize, rng: R, tracker: K) -> Self {
        assert!(n >= 1, "SeqSamplerWr: window size must be at least 1");
        assert!(k >= 1, "SeqSamplerWr: k must be at least 1");
        Self {
            n,
            count: 0,
            rng,
            tracker,
            instances: (0..k).map(|_| Instance::new()).collect(),
        }
    }

    /// Window size `n`.
    pub fn window(&self) -> u64 {
        self.n
    }

    /// Total number of arrivals observed.
    pub fn len_seen(&self) -> u64 {
        self.count
    }

    /// Current number of active (windowed) elements.
    pub fn active_len(&self) -> u64 {
        self.count.min(self.n)
    }

    /// Insert the next arrival.
    pub fn push(&mut self, value: T) {
        let idx = self.count;
        // Position inside the partial bucket; the arriving element is the
        // (pos+1)-th element of that bucket.
        let pos = idx % self.n;
        for inst in &mut self.instances {
            // Reservoir step: adopt with probability 1/(pos+1).
            if self.rng.gen_range(0..=pos) == 0 {
                let stat = self.tracker.fresh(&value, idx);
                inst.cur = Some((Sample::new(value.clone(), idx, idx), stat));
            } else if let Some((_, stat)) = inst.cur.as_mut() {
                self.tracker.observe(stat, &value);
            }
            // The complete bucket's retained sample keeps observing the
            // suffix (its suffix statistic spans into the partial bucket).
            if let Some((_, stat)) = inst.prev.as_mut() {
                self.tracker.observe(stat, &value);
            }
        }
        self.count += 1;
        if self.count.is_multiple_of(self.n) {
            // The partial bucket just completed; it becomes bucket U and the
            // old U is now fully expired.
            for inst in &mut self.instances {
                inst.prev = inst.cur.take();
            }
        }
    }

    /// Draw the `k` samples together with their tracker statistics.
    pub fn sample_k_with_stats(&mut self) -> Option<Vec<(Sample<T>, K::Stat)>> {
        if self.count == 0 {
            return None;
        }
        let oldest_active = self.count.saturating_sub(self.n);
        let within_first_bucket = self.count < self.n;
        let aligned = self.count.is_multiple_of(self.n);
        let picks = self
            .instances
            .iter()
            .map(|inst| {
                if within_first_bucket {
                    // Window = everything so far = the partial bucket.
                    inst.cur.as_ref().expect("partial bucket nonempty")
                } else if aligned {
                    // Window coincides with the complete bucket U.
                    inst.prev.as_ref().expect("complete bucket exists")
                } else {
                    // Window straddles U and V: take X_U unless expired.
                    let prev = inst.prev.as_ref().expect("complete bucket exists");
                    if prev.0.index() >= oldest_active {
                        prev
                    } else {
                        inst.cur.as_ref().expect("partial bucket nonempty")
                    }
                }
            })
            .map(|(s, stat)| (s.clone(), stat.clone()))
            .collect();
        Some(picks)
    }
}

impl<T, R, K: SampleTracker<T>> MemoryWords for SeqSamplerWr<T, R, K> {
    fn memory_words(&self) -> usize {
        // Per instance: up to two retained samples; plus (n, count) globals.
        let per: usize = self
            .instances
            .iter()
            .map(|i| {
                i.prev.as_ref().map_or(0, |_| Sample::<T>::WORDS)
                    + i.cur.as_ref().map_or(0, |_| Sample::<T>::WORDS)
            })
            .sum();
        per + 2
    }
}

impl<T: Clone, R: Rng, K: SampleTracker<T>> WindowSampler<T> for SeqSamplerWr<T, R, K> {
    fn insert(&mut self, value: T) {
        self.push(value);
    }

    fn sample(&mut self) -> Option<Sample<T>> {
        self.sample_k_with_stats().map(|mut v| v.swap_remove(0).0)
    }

    fn sample_k(&mut self) -> Option<Vec<Sample<T>>> {
        self.sample_k_with_stats()
            .map(|v| v.into_iter().map(|(s, _)| s).collect())
    }

    fn k(&self) -> usize {
        self.instances.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use swsample_stats::chi_square_uniform_test;

    #[test]
    fn empty_sampler_returns_none() {
        let mut s: SeqSamplerWr<u64, _> = SeqSamplerWr::new(10, 2, SmallRng::seed_from_u64(0));
        assert!(s.sample().is_none());
        assert!(s.sample_k().is_none());
    }

    #[test]
    fn sample_always_in_window() {
        let mut s = SeqSamplerWr::new(13, 3, SmallRng::seed_from_u64(1));
        for i in 0..500u64 {
            s.insert(i);
            let lo = (i + 1).saturating_sub(13);
            for smp in s.sample_k().expect("nonempty") {
                assert!(
                    smp.index() >= lo && smp.index() <= i,
                    "sample {} outside [{lo}, {i}]",
                    smp.index()
                );
                assert_eq!(*smp.value(), smp.index());
            }
        }
    }

    #[test]
    fn uniform_at_awkward_offsets() {
        // Check uniformity at several stream positions, including exactly on
        // a bucket boundary and just after one.
        let n = 16u64;
        for &stop in &[16u64, 17, 24, 32, 33, 47] {
            let trials = 20_000;
            let mut counts = vec![0u64; n as usize];
            for t in 0..trials {
                let mut s = SeqSamplerWr::new(n, 1, SmallRng::seed_from_u64(1000 + t));
                for i in 0..stop {
                    s.insert(i);
                }
                let smp = s.sample().expect("nonempty");
                counts[(smp.index() - (stop - n)) as usize] += 1;
            }
            let out = chi_square_uniform_test(&counts);
            assert!(
                out.p_value > 1e-4,
                "not uniform at stop={stop}: p = {}",
                out.p_value
            );
        }
    }

    #[test]
    fn uniform_during_warmup() {
        // Fewer than n arrivals: window is everything seen so far.
        let trials = 20_000;
        let mut counts = vec![0u64; 7];
        for t in 0..trials {
            let mut s = SeqSamplerWr::new(100, 1, SmallRng::seed_from_u64(t));
            for i in 0..7u64 {
                s.insert(i);
            }
            counts[s.sample().expect("nonempty").index() as usize] += 1;
        }
        let out = chi_square_uniform_test(&counts);
        assert!(
            out.p_value > 1e-4,
            "warm-up not uniform: p = {}",
            out.p_value
        );
    }

    #[test]
    fn k_samples_are_independent_pairs() {
        // With k = 2 the joint distribution over (pos1, pos2) must be the
        // product of uniforms: chi-square over the n×n grid.
        let n = 4u64;
        let trials = 40_000u64;
        let mut counts = vec![0u64; (n * n) as usize];
        for t in 0..trials {
            let mut s = SeqSamplerWr::new(n, 2, SmallRng::seed_from_u64(90_000 + t));
            for i in 0..10u64 {
                s.insert(i);
            }
            let ss = s.sample_k().expect("nonempty");
            let a = ss[0].index() - 6;
            let b = ss[1].index() - 6;
            counts[(a * n + b) as usize] += 1;
        }
        let out = chi_square_uniform_test(&counts);
        assert!(
            out.p_value > 1e-4,
            "k=2 joint not product-uniform: p = {}",
            out.p_value
        );
    }

    #[test]
    fn memory_is_constant_in_stream_length_and_window() {
        for &n in &[4u64, 64, 4096] {
            let k = 5;
            let mut s = SeqSamplerWr::new(n, k, SmallRng::seed_from_u64(2));
            let cap = k * 2 * 3 + 2; // two samples of 3 words per instance + globals
            for i in 0..3000u64 {
                s.insert(i);
                assert!(
                    s.memory_words() <= cap,
                    "memory {} > {cap}",
                    s.memory_words()
                );
            }
        }
    }

    #[test]
    fn tracker_counts_suffix_occurrences() {
        use crate::track::OccurrenceTracker;
        // Constant stream: the suffix count of the candidate must equal
        // (count - candidate index).
        let mut s = SeqSamplerWr::with_tracker(8, 1, SmallRng::seed_from_u64(3), OccurrenceTracker);
        for _ in 0..20 {
            s.insert(7u64);
        }
        let (smp, (val, cnt)) = s
            .sample_k_with_stats()
            .expect("nonempty")
            .pop()
            .expect("k=1");
        assert_eq!(val, 7);
        assert_eq!(cnt, 20 - smp.index());
    }

    #[test]
    fn len_accessors() {
        let mut s: SeqSamplerWr<u64, _> = SeqSamplerWr::new(10, 1, SmallRng::seed_from_u64(4));
        assert_eq!(s.active_len(), 0);
        for i in 0..25u64 {
            s.insert(i);
        }
        assert_eq!(s.len_seen(), 25);
        assert_eq!(s.active_len(), 10);
        assert_eq!(s.window(), 10);
        assert_eq!(s.k(), 1);
    }
}
