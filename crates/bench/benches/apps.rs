//! Criterion bench for experiments E9/E10/E11 — the §5 applications: cost
//! of streaming inserts (sampler + tracker) and of estimate queries for
//! frequency moments, entropy, and triangle counting over sliding windows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;
use swsample_apps::{EntropyEstimator, MomentEstimator, TriangleEstimator};
use swsample_stream::EdgeStreamGen;

fn bench_moments(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_moments");
    group.throughput(Throughput::Elements(1));
    for &s1 in &[16usize, 256] {
        group.bench_with_input(BenchmarkId::new("insert_f2", s1), &s1, |b, &s1| {
            let mut est = MomentEstimator::new(4096, 2, s1, 3, SmallRng::seed_from_u64(1));
            let mut i = 0u64;
            b.iter(|| {
                est.insert(black_box(i % 100));
                i += 1;
            });
        });
        group.bench_with_input(BenchmarkId::new("estimate_f2", s1), &s1, |b, &s1| {
            let mut est = MomentEstimator::new(4096, 2, s1, 3, SmallRng::seed_from_u64(2));
            for i in 0..8192u64 {
                est.insert(i % 100);
            }
            b.iter(|| black_box(est.estimate()));
        });
    }
    group.finish();
}

fn bench_entropy(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_entropy");
    group.throughput(Throughput::Elements(1));
    group.bench_function("insert_s128", |b| {
        let mut est = EntropyEstimator::new(4096, 128, 3, SmallRng::seed_from_u64(3));
        let mut i = 0u64;
        b.iter(|| {
            est.insert(black_box(i % 64));
            i += 1;
        });
    });
    group.bench_function("estimate_s128", |b| {
        let mut est = EntropyEstimator::new(4096, 128, 3, SmallRng::seed_from_u64(4));
        for i in 0..8192u64 {
            est.insert(i % 64);
        }
        b.iter(|| black_box(est.estimate()));
    });
    group.finish();
}

fn bench_triangles(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_triangles");
    group.throughput(Throughput::Elements(1));
    group.bench_function("insert_1024est", |b| {
        let mut gen = EdgeStreamGen::new(60, 0.35);
        let mut rng = SmallRng::seed_from_u64(5);
        let mut est = TriangleEstimator::new(800, 60, 1024, SmallRng::seed_from_u64(6), 7);
        b.iter(|| {
            let e = gen.next_edge(&mut rng);
            est.insert(black_box(e));
        });
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_moments, bench_entropy, bench_triangles
}
criterion_main!(benches);
